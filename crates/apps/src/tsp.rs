//! TSP: branch-and-bound traveling salesman (Table 3: 12 cities).
//!
//! Work is distributed through a **central job counter**: each job is a
//! fixed 3-city tour prefix, and a processor claims the next job by
//! locking the counter region, reading the ticket, writing ticket+1, and
//! unlocking — the exact idiom §5.2 credits for TSP's improvement: "the
//! improved performance is due to better management of accesses to a
//! counter that is used to assign jobs to processors". Under the default
//! protocol that idiom costs a lock round trip plus read and write misses;
//! the custom variant plugs the fetch-and-add protocol into the counter's
//! space, collapsing it to one round trip, *without changing this file's
//! claim loop*.
//!
//! A second shared region holds the best tour bound, protected by its
//! region lock. To keep the *amount of search work* identical across
//! protocols and runs (branch-and-bound is otherwise timing-sensitive),
//! every job prunes against a deterministic initial bound (the
//! nearest-neighbour tour) plus improvements found within the job itself;
//! the shared bound region is still read once and conditionally updated
//! per job — the access pattern §5.2 optimizes — but it never changes
//! which tree nodes get explored. The final answer is the exact optimum
//! under every protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dsm::Dsm;
use crate::Variant;
use ace_protocols::{AdaptiveSpec, ProtoSpec};

/// TSP workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of cities (tours start and end at city 0).
    pub cities: usize,
    /// Workload seed for the distance matrix.
    pub seed: u64,
}

impl Params {
    /// The paper's input: 12 cities.
    pub fn paper() -> Self {
        Params { cities: 12, seed: 11 }
    }

    /// A scaled-down input for unit tests.
    pub fn small() -> Self {
        Params { cities: 8, seed: 11 }
    }
}

/// Symmetric random distance matrix (identical on every node).
fn distances(p: &Params) -> Vec<Vec<u64>> {
    let n = p.cities;
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut d = vec![vec![0u64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w = rng.gen_range(5..100);
            d[i][j] = w;
            d[j][i] = w;
        }
    }
    d
}

/// Decode job `t` into the 3 distinct cities (from 1..n) that follow
/// city 0 in the tour prefix.
fn decode_job(t: u64, n: usize) -> (usize, usize, usize) {
    let m = (n - 1) as u64;
    let a = t / ((m - 1) * (m - 2));
    let rest = t % ((m - 1) * (m - 2));
    let b = rest / (m - 2);
    let c = rest % (m - 2);
    // a, b, c index into the remaining-city lists.
    let mut pool: Vec<usize> = (1..n).collect();
    let ca = pool.remove(a as usize);
    let cb = pool.remove(b as usize);
    let cc = pool.remove(c as usize);
    (ca, cb, cc)
}

/// Number of 3-city prefixes.
fn njobs(n: usize) -> u64 {
    let m = (n - 1) as u64;
    m * (m - 1) * (m - 2)
}

/// Depth-first search completing the tour; returns nodes explored.
#[allow(clippy::too_many_arguments)]
fn dfs(
    d: &[Vec<u64>],
    path: &mut Vec<usize>,
    used: &mut [bool],
    len: u64,
    best: &mut u64,
    best_path_len: &mut u64,
    explored: &mut u64,
) {
    *explored += 1;
    let n = d.len();
    let last = *path.last().unwrap();
    if path.len() == n {
        let total = len + d[last][0];
        if total < *best {
            *best = total;
            *best_path_len = total;
        }
        return;
    }
    for next in 1..n {
        if !used[next] {
            let nl = len + d[last][next];
            if nl < *best {
                used[next] = true;
                path.push(next);
                dfs(d, path, used, nl, best, best_path_len, explored);
                path.pop();
                used[next] = false;
            }
        }
    }
}

/// Deterministic starting bound: the nearest-neighbour tour from city 0.
pub fn greedy_bound(dist: &[Vec<u64>]) -> u64 {
    let n = dist.len();
    let mut used = vec![false; n];
    used[0] = true;
    let mut at = 0usize;
    let mut total = 0u64;
    for _ in 1..n {
        let next = (0..n).filter(|&c| !used[c]).min_by_key(|&c| dist[at][c]).unwrap();
        total += dist[at][next];
        used[next] = true;
        at = next;
    }
    total + dist[at][0]
}

/// Sequential reference: exact optimum by exhaustive B&B.
pub fn reference(p: &Params) -> u64 {
    let d = distances(p);
    let mut best = u64::MAX;
    let mut bp = 0;
    let mut explored = 0;
    let mut path = vec![0usize];
    let mut used = vec![false; p.cities];
    used[0] = true;
    dfs(&d, &mut path, &mut used, 0, &mut best, &mut bp, &mut explored);
    best
}

/// Run distributed TSP; returns the optimal tour length.
pub fn run<D: Dsm>(d: &D, p: &Params, v: Variant) -> f64 {
    let dist = distances(p);
    let n = p.cities;
    assert!(n >= 5, "need at least 5 cities for 3-city prefixes");

    // The counter gets its own space (so the custom variant can change
    // just the counter's protocol); the bound lives in a default space.
    let counter_space = d.new_space(ProtoSpec::Sc);
    let shared_space = d.new_space(ProtoSpec::Sc);

    let (counter, best) = if d.rank() == 0 {
        let counter = d.gmalloc::<u64>(counter_space, 1);
        let best = d.gmalloc::<u64>(shared_space, 1);
        d.map(best);
        d.start_write(best);
        d.with_mut::<u64, _>(best, |b| b[0] = u64::MAX);
        d.end_write(best);
        let ids = d.bcast(0, &[counter, best]);
        (ids[0], ids[1])
    } else {
        let ids = d.bcast(0, &[]);
        (ids[0], ids[1])
    };
    d.map(counter);
    d.map(best);
    d.barrier(shared_space);

    if v == Variant::Custom {
        d.change_protocol(counter_space, ProtoSpec::FetchAdd(1));
    } else if v == Variant::Adaptive {
        // FetchAdd redefines `lock` itself, so the engine may not cross
        // into or out of it freely: the counter space pins it instead.
        let spec = AdaptiveSpec::pinned(AdaptiveSpec::FETCH_ADD);
        d.change_protocol(counter_space, ProtoSpec::Adaptive(spec));
    }

    let total = njobs(n);
    loop {
        // Claim the next job: lock, read, increment, unlock. Under the
        // fetch-and-add protocol this whole block is one round trip.
        d.lock(counter);
        d.start_read(counter);
        let ticket = d.with::<u64, _>(counter, |c| c[0]);
        d.end_read(counter);
        d.start_write(counter);
        d.with_mut::<u64, _>(counter, |c| c[0] = ticket + 1);
        d.end_write(counter);
        d.unlock(counter);
        if ticket >= total {
            break;
        }

        let (a, b, c) = decode_job(ticket, n);
        let prefix_len = dist[0][a] + dist[a][b] + dist[b][c];

        // Read the shared bound once per job — the access the custom
        // protocol optimizes. The value is *observed* but pruning uses the
        // deterministic greedy bound so total work is protocol-invariant.
        d.start_read(best);
        let _observed = d.with::<u64, _>(best, |x| x[0]);
        d.end_read(best);

        let before = greedy_bound(&dist) + 1;
        let mut local_best = before;
        if prefix_len >= local_best {
            continue;
        }

        let mut path = vec![0, a, b, c];
        let mut used = vec![false; n];
        for &x in &path {
            used[x] = true;
        }
        let mut explored = 0;
        let mut bp = 0;
        dfs(&dist, &mut path, &mut used, prefix_len, &mut local_best, &mut bp, &mut explored);
        d.charge_flops(explored * 2);

        if local_best < before {
            // Publish the improvement under the bound's lock.
            d.lock(best);
            d.start_read(best);
            let cur = d.with::<u64, _>(best, |x| x[0]);
            d.end_read(best);
            if local_best < cur {
                d.start_write(best);
                d.with_mut::<u64, _>(best, |x| x[0] = local_best);
                d.end_write(best);
            }
            d.unlock(best);
        }
    }

    d.barrier(shared_space);
    d.start_read(best);
    let answer = d.with::<u64, _>(best, |x| x[0]);
    d.end_read(best);
    d.barrier(shared_space);
    answer as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{launch_ace, launch_crl};
    use ace_core::CostModel;

    #[test]
    fn decode_covers_all_jobs_uniquely() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for t in 0..njobs(n) {
            let (a, b, c) = decode_job(t, n);
            assert!(a != b && b != c && a != c);
            assert!(a >= 1 && a < n && b >= 1 && b < n && c >= 1 && c < n);
            assert!(seen.insert((a, b, c)), "duplicate prefix for ticket {t}");
        }
        assert_eq!(seen.len() as u64, njobs(n));
    }

    #[test]
    fn distributed_matches_reference() {
        let p = Params::small();
        let want = reference(&p) as f64;
        let sc = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Custom));
        let cr = launch_crl(4, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert_eq!(sc.verification, want);
        assert_eq!(cu.verification, want);
        assert_eq!(cr.verification, want);
    }

    #[test]
    fn custom_counter_cuts_messages() {
        let p = Params::small();
        let sc = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Custom));
        assert!(
            cu.msgs < sc.msgs,
            "fetch-and-add should cut counter traffic: custom={} sc={}",
            cu.msgs,
            sc.msgs
        );
    }

    #[test]
    fn single_node_solves() {
        let p = Params::small();
        let out = launch_ace(1, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert_eq!(out.verification, reference(&p) as f64);
    }
}
