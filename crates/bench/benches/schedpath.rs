//! Wall-clock cost of one scheduler round trip under the two execution
//! backends. A two-node ping-pong blocks on every receive, so each hop
//! pays one full pass through the blocking path: under `Threads` that is
//! a channel park/unpark and an OS context switch; under `Multiplexed`
//! it additionally releases the node's worker slot before the park and
//! reacquires it after — the per-yield overhead of the slot gate is the
//! difference between the two lines. The free cost model zeroes the
//! simulated charges, so only real engine work is measured.
//!
//! The oversubscribed variant runs the same ping-pong on a single-slot
//! pool, forcing a FIFO handoff through the gate on every hop — the
//! worst case the multiplexed backend can hit.

use ace_core::{CostModel, ExecBackend, Spmd};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::Cell;

const HOPS: usize = 2_000;

fn ping_pong(backend: ExecBackend, workers: Option<usize>) -> u64 {
    let mut b = Spmd::builder().nprocs(2).cost(CostModel::free()).backend(backend);
    if let Some(w) = workers {
        b = b.workers(w);
    }
    let r = b.run::<u64, _, _>(|node| {
        let wait_one = || {
            let seen = Cell::new(false);
            node.poll_until("pong", |_, _| seen.set(true), || seen.get());
        };
        if node.rank() == 0 {
            for i in 0..HOPS as u64 {
                node.send(1, i + 1);
                wait_one();
            }
        } else {
            for i in 0..HOPS as u64 {
                wait_one();
                node.send(0, i + 1);
            }
        }
        HOPS as u64
    });
    r.results[0]
}

fn sched_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedpath");
    g.sample_size(20);
    // Report per-hop cost: Criterion's mean for one iteration divided by
    // HOPS is the ns-per-yield headline; threads vs multiplexed is the
    // slot gate's toll.
    for (name, backend, workers) in [
        ("threads", ExecBackend::Threads, None),
        ("multiplexed", ExecBackend::Multiplexed, None),
        ("multiplexed_1slot", ExecBackend::Multiplexed, Some(1)),
    ] {
        g.bench_function(format!("{name}_pingpong_x{HOPS}"), |b| {
            b.iter(|| ping_pong(backend, workers))
        });
    }
    g.finish();
}

criterion_group!(benches, sched_loop);
criterion_main!(benches);
