//! The Ace compiler pipeline, end to end (§4.2): compile an Ace-C program
//! at each optimization level and watch the protocol-call counts fall.
//!
//! Run with: `cargo run --release --example acec_compiler`

use ace::core::{run_ace, CostModel};
use ace::lang::{compile, run_program, OptLevel, SystemConfig};

const PROGRAM: &str = r#"
// A producer/consumer kernel under a static update protocol: node 0
// writes a vector each step; everyone reads it.
double main() {
    int N = 64;
    int STEPS = 10;
    space s = new_space("SC");
    shared double *v;
    if (rank() == 0) { v = (shared double*) gmalloc(s, 64); }
    v = (shared double*) bcast_p(0, v);
    barrier(s);
    change_protocol(s, "StaticUpdate");

    int t;
    int i;
    double acc = 0.0;
    for (t = 0; t < STEPS; t = t + 1) {
        if (rank() == 0) {
            for (i = 0; i < N; i = i + 1) { v[i] = t * 100.0 + i; }
        }
        barrier(s);
        for (i = 0; i < N; i = i + 1) { acc = acc + v[i]; }
        barrier(s);
    }
    return reduce_add(acc);
}
"#;

fn main() {
    let cfg = SystemConfig::builtin();
    println!("compiling a 30-line Ace-C program at each optimization level (4 procs):\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "level", "dispatched", "direct", "removed", "sim (ms)", "checksum"
    );
    for level in OptLevel::ALL {
        let prog = compile(PROGRAM, &cfg, level).expect("program compiles");
        let (d, di, _) = prog.annotation_stats();
        let r = run_ace(4, CostModel::cm5(), |rt| {
            let v = run_program(rt, &prog).unwrap().as_f();
            let c = rt.counters();
            (v, c.dispatched, c.direct)
        });
        let (v, dyn_disp, dyn_direct) = r.results[0];
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>12.3} {:>12.1}",
            level.label(),
            dyn_disp,
            dyn_direct,
            d + di, // static annotation count for reference
            r.sim_ns as f64 / 1e6,
            v
        );
    }
    println!("\nthe checksum is identical at every level; only the protocol-call");
    println!("placement changes (Figure 5's insertion, then §4.2's three passes)");
}
