//! Chrome `trace_event` JSON export and a small structural validator.
//!
//! The export targets the subset of the trace-event format that both
//! `chrome://tracing` and Perfetto load: one thread track per node
//! (`pid` 0, `tid` = rank), `B`/`E` duration slices for hooks and waits,
//! `i` instants for sends/recvs/state changes, and `s`/`f` flow pairs
//! drawing one arrow per message. Timestamps are virtual nanoseconds
//! rendered as fractional microseconds (the format's native unit).

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::jsonlite::{self, Json};
use crate::timeline::MachineTrace;
use crate::{EventKind, NO_REGION};

/// Escape a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Virtual nanoseconds as the format's microsecond timestamps, exactly.
fn ts(t: u64) -> String {
    format!("{}.{:03}", t / 1000, t % 1000)
}

/// Render a region id for display: `r<home>.<seq>`, or `-` for
/// region-less events. (Raw u64 ids exceed JSON's exact-integer range.)
fn region_str(region: u64) -> String {
    if region == NO_REGION {
        "-".to_string()
    } else {
        format!("r{}.{}", region >> 48, region & ((1u64 << 48) - 1))
    }
}

impl MachineTrace {
    /// Export the merged trace as a Chrome `trace_event` JSON document.
    ///
    /// Message arrows are reconstructed at export time: each (src, dst)
    /// channel is FIFO, so recvs on a pair pair with sends in order. Ring
    /// eviction complicates this: the surviving Sends and Recvs of a pair
    /// are each a *suffix* of the pair's FIFO stream, and the suffixes
    /// need not start at the same message (a Send can be evicted while
    /// its matching Recv survives, or vice versa). The export therefore
    /// aligns each Recv against the surviving Send list by the sender
    /// timestamp the Recv carries (`sent_at`), skipping sends whose recvs
    /// were evicted and *suppressing* the flow-end of a recv whose send
    /// was evicted — a dangling `s` renders as nothing in viewers, but a
    /// dangling `f` draws an arrow from nowhere.
    pub fn to_chrome_json(&self) -> String {
        // Pass 1: surviving Send times per (src, dst), in emission order
        // (merged() preserves per-node order, so per-pair send order too).
        let mut pair_sends: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
        for (rank, e) in self.merged() {
            if let EventKind::Send { dst, .. } = &e.kind {
                pair_sends.entry((rank as u16, *dst)).or_default().push(e.t);
            }
        }
        let mut out = String::with_capacity(64 * self.event_count() + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"ace simulated machine\"}}",
        );
        for n in &self.nodes {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"ts\":0,\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"node {}\"}}}}",
                n.rank, n.rank
            );
        }
        let mut send_k: HashMap<(usize, u16), u64> = HashMap::new();
        let mut recv_p: HashMap<(u16, u16), usize> = HashMap::new();
        for (rank, e) in self.merged() {
            let t = ts(e.t);
            match &e.kind {
                EventKind::Send { dst, tag, bytes, subs } => {
                    let k = send_k.entry((rank, *dst)).or_insert(0);
                    let id = (rank as u64) << 48 | (*dst as u64) << 32 | *k;
                    *k += 1;
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\"s\":\"t\",\
                         \"cat\":\"msg\",\"name\":\"send {tag}\",\
                         \"args\":{{\"dst\":{dst},\"bytes\":{bytes},\"subs\":{subs}}}}}"
                    );
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"s\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\
                         \"cat\":\"msg\",\"name\":\"{tag}\",\"id\":\"0x{id:016x}\"}}"
                    );
                }
                // Packing is a bookkeeping event: the flow arrow belongs
                // to the wire envelope, so the export draws nothing here.
                EventKind::Pack { .. } => {}
                EventKind::Recv { src, tag, bytes, sent_at, subs } => {
                    // Align against this pair's surviving sends: skip sends
                    // whose recvs were evicted, and draw the arrow only when
                    // this recv's sender timestamp matches a surviving send.
                    let pair = (*src, rank as u16);
                    let p = recv_p.entry(pair).or_insert(0);
                    if let Some(sends) = pair_sends.get(&pair) {
                        while *p < sends.len() && sends[*p] < *sent_at {
                            *p += 1;
                        }
                        if *p < sends.len() && sends[*p] == *sent_at {
                            let id = (*src as u64) << 48 | (rank as u64) << 32 | *p as u64;
                            *p += 1;
                            let _ = write!(
                                out,
                                ",\n{{\"ph\":\"f\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\
                                 \"bp\":\"e\",\"cat\":\"msg\",\"name\":\"{tag}\",\
                                 \"id\":\"0x{id:016x}\"}}"
                            );
                        }
                    }
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\"s\":\"t\",\
                         \"cat\":\"msg\",\"name\":\"recv {tag}\",\
                         \"args\":{{\"src\":{src},\"bytes\":{bytes},\"sent_at\":{sent_at},\
                         \"subs\":{subs}}}}}"
                    );
                }
                EventKind::HookEnter { hook, region, space, proto, detail }
                | EventKind::HookExit { hook, region, space, proto, detail } => {
                    let ph = if matches!(e.kind, EventKind::HookEnter { .. }) { "B" } else { "E" };
                    let label = if detail.is_empty() { hook.name() } else { detail };
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"{ph}\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\
                         \"cat\":\"hook\",\"name\":\"{label}\",\
                         \"args\":{{\"region\":\"{}\",\"space\":{space},\"proto\":\"{proto}\"}}}}",
                        region_str(*region)
                    );
                }
                EventKind::State { region, from, to } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\"s\":\"t\",\
                         \"cat\":\"state\",\"name\":\"state {} {from}->{to}\",\
                         \"args\":{{\"region\":\"{}\",\"from\":{from},\"to\":{to}}}}}",
                        region_str(*region),
                        region_str(*region)
                    );
                }
                EventKind::Switch { region, space, from, to, epoch } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\"s\":\"t\",\
                         \"cat\":\"switch\",\"name\":\"switch {from}->{to}\",\
                         \"args\":{{\"region\":\"{}\",\"space\":{space},\"from\":\"{from}\",\
                         \"to\":\"{to}\",\"epoch\":{epoch}}}}}",
                        region_str(*region)
                    );
                }
                EventKind::Violation { region, what } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\"s\":\"t\",\
                         \"cat\":\"violation\",\"name\":\"violation {}\",\
                         \"args\":{{\"region\":\"{}\",\"what\":\"{}\"}}}}",
                        region_str(*region),
                        region_str(*region),
                        esc(what)
                    );
                }
                EventKind::Block { what } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"B\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\
                         \"cat\":\"wait\",\"name\":\"wait\",\"args\":{{\"what\":\"{}\"}}}}",
                        esc(what)
                    );
                }
                EventKind::Unblock { what } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"E\",\"pid\":0,\"tid\":{rank},\"ts\":{t},\
                         \"cat\":\"wait\",\"name\":\"wait\",\"args\":{{\"what\":\"{}\"}}}}",
                        esc(what)
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// What [`validate_chrome_trace`] measured about a structurally valid
/// trace document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeCheck {
    /// Non-metadata events.
    pub events: u64,
    /// Distinct (pid, tid) tracks seen on non-metadata events.
    pub tracks: u64,
    /// `B` slice-begin events.
    pub spans_opened: u64,
    /// `E` slice-end events.
    pub spans_closed: u64,
    /// `i` instant events.
    pub instants: u64,
    /// `s` flow-start events (one per traced message send).
    pub flow_starts: u64,
    /// `f` flow-end events (one per traced message recv whose matching
    /// send survived ring eviction).
    pub flow_ends: u64,
    /// Flow ids seen on both an `s` and an `f` event — rendered arrows.
    pub flows_matched: u64,
}

/// Structurally validate a Chrome `trace_event` JSON document.
///
/// Checks that the document parses, that `traceEvents` is an array of
/// objects each carrying `ph`/`pid`/`tid` (and a numeric `ts` on
/// non-metadata events), and that timestamps are monotone
/// non-decreasing per (pid, tid) track in array order. Returns counts
/// for the caller to cross-check against run statistics (e.g. flow
/// starts vs. messages sent).
pub fn validate_chrome_trace(doc: &str) -> Result<ChromeCheck, String> {
    let root = jsonlite::parse(doc)?;
    let events = match &root {
        Json::Arr(_) => &root,
        Json::Obj(_) => root.get("traceEvents").ok_or_else(|| "missing traceEvents".to_string())?,
        _ => return Err("top level must be an object or array".to_string()),
    };
    let events = events.as_arr().ok_or_else(|| "traceEvents must be an array".to_string())?;
    let mut check = ChromeCheck::default();
    let mut last_ts: HashMap<(i64, i64), f64> = HashMap::new();
    let mut starts: HashMap<String, u64> = HashMap::new();
    let mut ends: HashMap<String, u64> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph =
            e.get("ph").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid =
            e.get("pid").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing pid"))?
                as i64;
        let tid =
            e.get("tid").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing tid"))?
                as i64;
        if ph == "M" {
            continue;
        }
        let t =
            e.get("ts").and_then(Json::as_f64).ok_or_else(|| format!("event {i}: missing ts"))?;
        e.get("name").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing name"))?;
        let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        if t < *prev {
            return Err(format!(
                "event {i}: track ({pid},{tid}) time went backwards: {t} < {prev}"
            ));
        }
        *prev = t;
        check.events += 1;
        match ph {
            "B" => check.spans_opened += 1,
            "E" => check.spans_closed += 1,
            "i" | "I" => check.instants += 1,
            "s" | "f" => {
                let id = e
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: flow event missing id"))?;
                let bucket = if ph == "s" { &mut starts } else { &mut ends };
                *bucket.entry(id.to_string()).or_insert(0) += 1;
                if ph == "s" {
                    check.flow_starts += 1;
                } else {
                    check.flow_ends += 1;
                }
            }
            "X" | "C" | "b" | "e" | "n" | "t" => {}
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    check.tracks = last_ts.len() as u64;
    // A flow-start without a matching end renders as nothing, but a
    // flow-end without a start draws an arrow from nowhere: reject it.
    for (id, &n) in &ends {
        let s = starts.get(id).copied().unwrap_or(0);
        if n > s {
            return Err(format!(
                "dangling flow end: id {id} has {n} flow-ends but only {s} flow-starts"
            ));
        }
    }
    check.flows_matched =
        starts.iter().map(|(id, &n)| n.min(ends.get(id).copied().unwrap_or(0))).sum();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::NodeTrace;
    use crate::{EventKind as K, Hook, TraceEvent};

    fn ev(t: u64, kind: K) -> TraceEvent {
        TraceEvent { t, kind }
    }

    fn sample() -> MachineTrace {
        MachineTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    dropped: 0,
                    events: vec![
                        ev(
                            10,
                            K::HookEnter {
                                hook: Hook::StartRead,
                                region: (1u64 << 48) | 2,
                                space: 1,
                                proto: "sc",
                                detail: "",
                            },
                        ),
                        ev(20, K::Send { dst: 1, tag: "proto", bytes: 44, subs: 2 }),
                        ev(25, K::Block { what: "read data".into() }),
                        ev(90, K::Unblock { what: "read data".into() }),
                        ev(
                            95,
                            K::HookExit {
                                hook: Hook::StartRead,
                                region: (1u64 << 48) | 2,
                                space: 1,
                                proto: "sc",
                                detail: "",
                            },
                        ),
                    ],
                },
                NodeTrace {
                    rank: 1,
                    dropped: 0,
                    events: vec![
                        ev(60, K::Recv { src: 0, tag: "proto", bytes: 44, sent_at: 20, subs: 2 }),
                        ev(
                            61,
                            K::HookEnter {
                                hook: Hook::Handle,
                                region: (1u64 << 48) | 2,
                                space: 1,
                                proto: "sc",
                                detail: "RREQ",
                            },
                        ),
                        ev(62, K::State { region: (1u64 << 48) | 2, from: 0, to: 2 }),
                        ev(
                            70,
                            K::HookExit {
                                hook: Hook::Handle,
                                region: (1u64 << 48) | 2,
                                space: 1,
                                proto: "sc",
                                detail: "RREQ",
                            },
                        ),
                    ],
                },
            ],
        }
    }

    #[test]
    fn export_is_valid_and_flows_match() {
        let doc = sample().to_chrome_json();
        let check = validate_chrome_trace(&doc).unwrap();
        assert_eq!(check.tracks, 2);
        assert_eq!(check.flow_starts, 1);
        assert_eq!(check.flow_ends, 1);
        assert_eq!(check.flows_matched, 1);
        assert_eq!(check.spans_opened, 3, "start_read + wait + handle");
        assert_eq!(check.spans_closed, 3);
        assert!(doc.contains("\"name\":\"RREQ\"") || doc.contains("RREQ"));
    }

    #[test]
    fn evicted_send_suppresses_flow_end() {
        // Node 1's first recv carries sent_at=10, but the matching send was
        // evicted from node 0's ring (only the sends at t=20 and t=40
        // survive). The export must not emit a dangling `f` for it, while
        // still pairing the surviving sends with their recvs.
        let trace = MachineTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    dropped: 1,
                    events: vec![
                        ev(20, K::Send { dst: 1, tag: "proto", bytes: 24, subs: 1 }),
                        ev(40, K::Send { dst: 1, tag: "proto", bytes: 24, subs: 1 }),
                    ],
                },
                NodeTrace {
                    rank: 1,
                    dropped: 0,
                    events: vec![
                        ev(60, K::Recv { src: 0, tag: "proto", bytes: 24, sent_at: 10, subs: 1 }),
                        ev(70, K::Recv { src: 0, tag: "proto", bytes: 24, sent_at: 20, subs: 1 }),
                        ev(80, K::Recv { src: 0, tag: "proto", bytes: 24, sent_at: 40, subs: 1 }),
                    ],
                },
            ],
        };
        let check = validate_chrome_trace(&trace.to_chrome_json()).unwrap();
        assert_eq!(check.flow_starts, 2);
        assert_eq!(check.flow_ends, 2, "the orphaned recv draws no arrow");
        assert_eq!(check.flows_matched, 2);
        assert_eq!(check.instants, 5, "2 send + 3 recv instants: the orphan keeps its instant");
    }

    #[test]
    fn evicted_recv_skips_its_send() {
        // The recv matching node 0's first send was evicted from node 1's
        // ring; the surviving recv must pair with the *second* send, not
        // inherit the first one's flow id.
        let trace = MachineTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    dropped: 0,
                    events: vec![
                        ev(20, K::Send { dst: 1, tag: "proto", bytes: 24, subs: 1 }),
                        ev(40, K::Send { dst: 1, tag: "proto", bytes: 24, subs: 1 }),
                    ],
                },
                NodeTrace {
                    rank: 1,
                    dropped: 1,
                    events: vec![ev(
                        80,
                        K::Recv { src: 0, tag: "proto", bytes: 24, sent_at: 40, subs: 1 },
                    )],
                },
            ],
        };
        let doc = trace.to_chrome_json();
        let check = validate_chrome_trace(&doc).unwrap();
        assert_eq!(check.flow_starts, 2);
        assert_eq!(check.flow_ends, 1);
        assert_eq!(check.flows_matched, 1, "the surviving recv pairs with send #1");
    }

    #[test]
    fn violation_events_export_as_instants() {
        let trace = MachineTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                dropped: 0,
                events: vec![ev(
                    5,
                    K::Violation {
                        region: (1u64 << 48) | 2,
                        what: "conformance violation on r1.2".into(),
                    },
                )],
            }],
        };
        let doc = trace.to_chrome_json();
        let check = validate_chrome_trace(&doc).unwrap();
        assert_eq!(check.instants, 1);
        assert!(doc.contains("\"cat\":\"violation\""), "{doc}");
        assert!(doc.contains("conformance violation on r1.2"), "{doc}");
    }

    #[test]
    fn switch_events_export_as_instants() {
        let trace = MachineTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                dropped: 0,
                events: vec![ev(
                    7,
                    K::Switch {
                        region: crate::NO_REGION,
                        space: 2,
                        from: "SC",
                        to: "Pipelined",
                        epoch: 3,
                    },
                )],
            }],
        };
        let doc = trace.to_chrome_json();
        let check = validate_chrome_trace(&doc).unwrap();
        assert_eq!(check.instants, 1);
        assert!(doc.contains("\"cat\":\"switch\""), "{doc}");
        assert!(doc.contains("switch SC->Pipelined"), "{doc}");
        assert!(doc.contains("\"epoch\":3"), "{doc}");
    }

    #[test]
    fn validator_rejects_dangling_flow_end() {
        let doc = r#"{"traceEvents":[
            {"ph":"f","pid":0,"tid":0,"ts":5.0,"bp":"e","name":"m","id":"0x1"}
        ]}"#;
        let err = validate_chrome_trace(doc).unwrap_err();
        assert!(err.contains("dangling flow end"), "{err}");
    }

    #[test]
    fn validator_rejects_backwards_time() {
        let doc = r#"{"traceEvents":[
            {"ph":"i","pid":0,"tid":0,"ts":5.0,"s":"t","name":"a"},
            {"ph":"i","pid":0,"tid":0,"ts":4.0,"s":"t","name":"b"}
        ]}"#;
        let err = validate_chrome_trace(doc).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"pid":0,"tid":0}]}"#).is_err());
        assert!(validate_chrome_trace(r#"{"notTraceEvents":[]}"#).is_err());
        assert!(validate_chrome_trace("[").is_err());
    }

    #[test]
    fn timestamps_render_as_fractional_micros() {
        assert_eq!(ts(0), "0.000");
        assert_eq!(ts(1500), "1.500");
        assert_eq!(ts(999), "0.999");
    }
}
