//! Launch helpers: run a benchmark kernel on either runtime and collect a
//! uniform outcome record for the harnesses.

use std::time::Duration;

use ace_core::{run_ace, CostModel, OpCounters};
use ace_crl::run_crl;

use crate::dsm::{AceDsm, CrlDsm};

/// Everything a harness needs from one benchmark run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The app's deterministic verification value (node 0's copy).
    pub verification: f64,
    /// Simulated completion time in nanoseconds.
    pub sim_ns: u64,
    /// Wall-clock duration of the simulation.
    pub wall: Duration,
    /// Total messages across all nodes.
    pub msgs: u64,
    /// Total payload bytes across all nodes.
    pub bytes: u64,
    /// Machine-wide aggregated operation counters.
    pub counters: OpCounters,
}

impl RunOutcome {
    /// Simulated time in milliseconds (the unit the tables print).
    pub fn sim_ms(&self) -> f64 {
        self.sim_ns as f64 / 1e6
    }
}

/// Run `f` on the Ace runtime and collect the outcome.
pub fn launch_ace<F>(nprocs: usize, cost: CostModel, f: F) -> RunOutcome
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace(nprocs, cost, |rt| {
        let d = AceDsm::new(rt);
        let v = f(&d);
        (v, rt.counters())
    });
    collect(r)
}

/// Run `f` on the CRL baseline and collect the outcome.
pub fn launch_crl<F>(nprocs: usize, cost: CostModel, f: F) -> RunOutcome
where
    F: Fn(&CrlDsm) -> f64 + Sync,
{
    let r = run_crl(nprocs, cost, |crl| {
        let d = CrlDsm::new(crl);
        let v = f(&d);
        (v, crl.counters())
    });
    collect(r)
}

fn collect(r: ace_core::SpmdResult<(f64, OpCounters)>) -> RunOutcome {
    let mut counters = OpCounters::default();
    for (_, c) in &r.results {
        counters.merge(c);
    }
    RunOutcome {
        verification: r.results[0].0,
        sim_ns: r.sim_ns,
        wall: r.wall,
        msgs: r.stats.total_msgs(),
        bytes: r.stats.total_bytes(),
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsm::Dsm;

    #[test]
    fn outcomes_carry_stats() {
        let out = launch_ace(2, CostModel::cm5(), |d| {
            let s = d.new_space(ace_protocols::ProtoSpec::Sc);
            d.barrier(s);
            42.0
        });
        assert_eq!(out.verification, 42.0);
        assert!(out.msgs > 0, "barrier exchanges messages");
        assert!(out.sim_ns > 0);
        assert_eq!(out.counters.barriers, 2);
    }
}
