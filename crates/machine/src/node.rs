//! A simulated processor: rank, message endpoints, virtual clock, counters.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ace_trace::{EventKind, MachineTrace, NodeTrace, TraceConfig, TraceSink};
use crossbeam::channel::{Receiver, Sender, TryRecvError};

use crate::cost::CostModel;
use crate::envelope::{Envelope, MsgSize, HEADER_BYTES};
use crate::stats::NodeStats;

/// How long a blocked node waits before concluding the run is wedged.
/// Protocol bugs in a message-passing system manifest as silent hangs; the
/// watchdog converts them into a panic with the caller-provided diagnostic.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// How many messages [`Node::try_recv`] pulls off the channel per drain
/// burst. Draining in bursts amortizes the channel's synchronization over
/// many messages; the burst is bounded so a flood of incoming traffic
/// cannot starve the caller's predicate checks.
pub const DEFAULT_DRAIN_BATCH: usize = 64;

/// Construction-time per-node knobs, fixed by the machine builder.
#[derive(Debug, Clone)]
pub(crate) struct NodeSetup {
    pub watchdog: Duration,
    pub drain_batch: usize,
    pub trace: TraceConfig,
}

impl Default for NodeSetup {
    fn default() -> Self {
        NodeSetup {
            watchdog: DEFAULT_WATCHDOG,
            drain_batch: DEFAULT_DRAIN_BATCH,
            trace: TraceConfig::off(),
        }
    }
}

/// One simulated processor.
///
/// A `Node` is owned by exactly one OS thread and is deliberately `!Sync`:
/// everything inside uses `Cell`/`RefCell`. The only cross-thread objects
/// are the channel endpoints and the shared peer-failure flag.
pub struct Node<M> {
    rank: usize,
    nprocs: usize,
    rx: Receiver<Envelope<M>>,
    txs: Arc<Vec<Sender<Envelope<M>>>>,
    cost: Arc<CostModel>,
    clock: Cell<u64>,
    msgs_sent: Cell<u64>,
    bytes_sent: Cell<u64>,
    msgs_recv: Cell<u64>,
    watchdog: Cell<Duration>,
    /// Local inbox filled by draining the channel in bursts. Messages are
    /// *not* absorbed on drain — [`Node::absorb`] runs when a message is
    /// popped for handling, so per-message virtual-clock semantics are
    /// identical to unbatched reception (same order, same arrival math).
    inbox: RefCell<VecDeque<Envelope<M>>>,
    drain_batch: Cell<usize>,
    /// Structured event sink; a no-op unless the builder enabled tracing.
    sink: TraceSink,
    /// Rank of the first peer whose thread died by panic, or -1. Shared by
    /// every node of the machine; see [`crate::Spmd`].
    failed: Arc<AtomicIsize>,
}

impl<M: MsgSize + Send> Node<M> {
    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        rx: Receiver<Envelope<M>>,
        txs: Arc<Vec<Sender<Envelope<M>>>>,
        cost: Arc<CostModel>,
        failed: Arc<AtomicIsize>,
        setup: &NodeSetup,
    ) -> Self {
        assert!(setup.drain_batch >= 1, "drain batch must be at least 1");
        Node {
            rank,
            nprocs,
            rx,
            txs,
            cost,
            clock: Cell::new(0),
            msgs_sent: Cell::new(0),
            bytes_sent: Cell::new(0),
            msgs_recv: Cell::new(0),
            watchdog: Cell::new(setup.watchdog),
            inbox: RefCell::new(VecDeque::new()),
            drain_batch: Cell::new(setup.drain_batch),
            sink: TraceSink::new(&setup.trace),
            failed,
        }
    }

    /// This node's rank in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual clock in nanoseconds.
    pub fn now(&self) -> u64 {
        self.clock.get()
    }

    /// Advance the virtual clock by a computation charge.
    pub fn charge(&self, ns: u64) {
        self.clock.set(self.clock.get() + ns);
    }

    /// This node's event sink. Higher layers (the Ace runtime) stamp
    /// their own events — hook spans, state transitions — through it;
    /// check [`TraceSink::enabled`] before building an event.
    pub fn trace_sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Drain the node's event buffer for merging, if tracing is on.
    pub(crate) fn take_trace(&self) -> Option<NodeTrace> {
        self.sink.enabled().then(|| self.sink.take(self.rank))
    }

    /// Inject a message to `dst`. Charges send overhead and records stats.
    /// Sending to self is allowed (the message is delivered via the normal
    /// polling path, like a loopback active message).
    pub fn send(&self, dst: usize, msg: M) {
        debug_assert!(dst < self.nprocs, "send to nonexistent node {dst}");
        self.charge(self.cost.send_overhead);
        let bytes = msg.size_bytes() + HEADER_BYTES;
        self.msgs_sent.set(self.msgs_sent.get() + 1);
        self.bytes_sent.set(self.bytes_sent.get() + bytes as u64);
        if self.sink.enabled() {
            self.sink.emit(
                self.clock.get(),
                EventKind::Send { dst: dst as u16, tag: msg.tag(), bytes: bytes as u32 },
            );
        }
        let env = Envelope { src: self.rank, send_time: self.clock.get(), bytes, msg };
        // A send can only fail if the destination thread already exited,
        // which means the SPMD program violated its quiescence contract;
        // losing the message is the faithful outcome (the wire goes dead).
        let _ = self.txs[dst].send(env);
    }

    /// Pull a burst of messages off the channel into the local inbox,
    /// without absorbing them. Per-pair FIFO is preserved: the channel
    /// delivers in send order per source and the inbox is a queue.
    fn drain_burst(&self, inbox: &mut VecDeque<Envelope<M>>) {
        let limit = self.drain_batch.get();
        while inbox.len() < limit {
            match self.rx.try_recv() {
                Ok(env) => inbox.push_back(env),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => self.peer_exited("channel disconnected"),
            }
        }
    }

    /// Non-blocking receive. On delivery the local clock advances to cover
    /// the message's flight time and the receive overhead is charged.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        let mut inbox = self.inbox.borrow_mut();
        if inbox.is_empty() {
            self.drain_burst(&mut inbox);
        }
        let env = inbox.pop_front()?;
        drop(inbox);
        self.absorb(&env);
        Some(env)
    }

    /// Blocking receive with a short timeout, for poll loops that should
    /// yield the CPU while idle. Returns `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if the channel is disconnected: every peer's thread has
    /// exited, so no message can ever arrive and waiting is futile.
    pub fn recv_timeout(&self, d: Duration) -> Option<Envelope<M>> {
        if let Some(env) = self.inbox.borrow_mut().pop_front() {
            self.absorb(&env);
            return Some(env);
        }
        match self.rx.recv_timeout(d) {
            Ok(env) => {
                self.absorb(&env);
                Some(env)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                self.peer_exited("channel disconnected")
            }
        }
    }

    fn absorb(&self, env: &Envelope<M>) {
        let arrival = env.send_time + self.cost.wire_time(env.bytes);
        let now = self.clock.get().max(arrival) + self.cost.recv_overhead;
        self.clock.set(now);
        self.msgs_recv.set(self.msgs_recv.get() + 1);
        if self.sink.enabled() {
            self.sink.emit(
                now,
                EventKind::Recv {
                    src: env.src as u16,
                    tag: env.msg.tag(),
                    bytes: env.bytes as u32,
                    sent_at: env.send_time,
                },
            );
        }
    }

    /// Diagnose a dead peer and panic immediately instead of letting the
    /// caller stall into the watchdog.
    fn peer_exited(&self, what: &str) -> ! {
        let culprit = self.failed.load(Ordering::SeqCst);
        if culprit >= 0 {
            panic!("node {}: peer exited (node {culprit} died) while: {what}", self.rank);
        }
        panic!("node {}: peer exited while: {what}", self.rank);
    }

    /// Panic if some peer's thread has died by panic: a message this node
    /// is waiting on may never arrive, so failing fast with the culprit's
    /// rank beats a silent multi-second watchdog stall.
    fn check_peers(&self, what: &str) {
        let culprit = self.failed.load(Ordering::SeqCst);
        if culprit >= 0 && culprit as usize != self.rank {
            panic!(
                "node {}: peer exited (node {culprit} died) while waiting for: {what}",
                self.rank
            );
        }
    }

    /// Spin-with-backoff until `pred` returns true, invoking `handle` on
    /// messages that arrive in the meantime. This is the substrate's
    /// equivalent of an Active Messages poll loop: a blocked processor keeps
    /// servicing incoming protocol requests. Panics with `what` if the
    /// watchdog expires (a wedged protocol) or a peer's thread dies (a
    /// crashed protocol on the other side).
    ///
    /// `pred` is re-checked after **every** message: as soon as the wait is
    /// satisfied the loop returns, leaving any further queued messages for
    /// the node's next poll. This matters for virtual-time fidelity — a
    /// thread that races ahead in wall-clock time can enqueue messages
    /// whose virtual send time is far in this node's future, and absorbing
    /// them while blocked on an earlier event would serialize logically
    /// parallel phases (the node's own next compute phase would start
    /// *after* the peer's, inflating simulated time from max-of-nodes
    /// toward sum-of-nodes).
    pub fn poll_until(
        &self,
        what: &str,
        handle: impl FnMut(&Self, Envelope<M>),
        mut pred: impl FnMut() -> bool,
    ) {
        if pred() {
            return;
        }
        if self.sink.enabled() {
            self.sink.emit(self.clock.get(), EventKind::Block { what: what.into() });
        }
        self.poll_loop(what, handle, pred);
        if self.sink.enabled() {
            self.sink.emit(self.clock.get(), EventKind::Unblock { what: what.into() });
        }
    }

    fn poll_loop(
        &self,
        what: &str,
        mut handle: impl FnMut(&Self, Envelope<M>),
        mut pred: impl FnMut() -> bool,
    ) {
        let start = Instant::now();
        loop {
            match self.try_recv() {
                Some(env) => {
                    handle(self, env);
                    if pred() {
                        return;
                    }
                }
                None => {
                    if pred() {
                        return;
                    }
                    match self.recv_timeout(Duration::from_micros(100)) {
                        Some(env) => {
                            handle(self, env);
                            if pred() {
                                return;
                            }
                        }
                        None => {
                            self.check_peers(what);
                            if start.elapsed() > self.watchdog.get() {
                                if self.sink.enabled() {
                                    // Dump this node's wait-graph view before
                                    // dying: which hook/region the stall sits
                                    // inside, not just the caller's `what`.
                                    let t = MachineTrace { nodes: vec![self.sink.take(self.rank)] };
                                    let report = t.wait_graph_report();
                                    if !report.is_empty() {
                                        eprintln!("{report}");
                                    }
                                }
                                panic!(
                                    "node {} wedged waiting for: {what} (clock {} ns)",
                                    self.rank,
                                    self.now()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Snapshot of this node's statistics (final clock filled in).
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            msgs_sent: self.msgs_sent.get(),
            bytes_sent: self.bytes_sent.get(),
            msgs_recv: self.msgs_recv.get(),
            final_clock: self.clock.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::Spmd;

    #[test]
    fn clock_advances_on_send_and_recv() {
        let cost = CostModel::cm5();
        let r = Spmd::builder().nprocs(2).cost(cost.clone()).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                node.send(1, 42u64);
                node.now()
            } else {
                let got = Cell::new(0u64);
                node.poll_until("payload", |_, env| got.set(env.msg), || got.get() != 0);
                assert_eq!(got.get(), 42);
                node.now()
            }
        });
        // Sender paid send overhead; receiver's clock covers flight time.
        assert_eq!(r.results[0], cost.send_overhead);
        assert!(r.results[1] >= cost.send_overhead + cost.wire_time(8 + HEADER_BYTES));
    }

    #[test]
    fn self_send_is_delivered() {
        let r = Spmd::builder().nprocs(1).cost(CostModel::free()).run::<u64, _, _>(|node| {
            node.send(0, 7);
            let got = Cell::new(0u64);
            node.poll_until("self message", |_, env| got.set(env.msg), || got.get() != 0);
            got.get()
        });
        assert_eq!(r.results[0], 7);
    }

    #[test]
    #[should_panic(expected = "wedged waiting for")]
    fn watchdog_fires() {
        Spmd::builder()
            .nprocs(1)
            .cost(CostModel::free())
            .watchdog(Duration::from_millis(50))
            .run::<u64, _, _>(|node| {
                node.poll_until("never", |_, _| {}, || false);
            });
    }

    #[test]
    fn stats_count_messages() {
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                for i in 0..5 {
                    node.send(1, i + 1);
                }
            } else {
                let seen = Cell::new(0u64);
                node.poll_until("5 messages", |_, _| seen.set(seen.get() + 1), || seen.get() == 5);
            }
        });
        assert_eq!(r.stats.nodes[0].msgs_sent, 5);
        assert_eq!(r.stats.nodes[1].msgs_recv, 5);
        assert_eq!(r.stats.nodes[0].bytes_sent, 5 * (8 + HEADER_BYTES as u64));
    }

    #[test]
    fn fifo_between_pair() {
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                for i in 0..100 {
                    node.send(1, i);
                }
                Vec::new()
            } else {
                let seen = RefCell::new(Vec::new());
                node.poll_until(
                    "100 msgs",
                    |_, env| seen.borrow_mut().push(env.msg),
                    || seen.borrow().len() == 100,
                );
                seen.into_inner()
            }
        });
        assert_eq!(r.results[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_between_pair_unbatched() {
        // Same as above with the burst disabled: the drain path must be
        // observationally identical at batch size 1.
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).drain_batch(1).run::<u64, _, _>(
            |node| {
                if node.rank() == 0 {
                    for i in 0..100 {
                        node.send(1, i);
                    }
                    Vec::new()
                } else {
                    let seen = RefCell::new(Vec::new());
                    node.poll_until(
                        "100 msgs",
                        |_, env| seen.borrow_mut().push(env.msg),
                        || seen.borrow().len() == 100,
                    );
                    seen.into_inner()
                }
            },
        );
        assert_eq!(r.results[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn inbox_messages_absorb_at_pop_not_at_drain() {
        // A burst of queued messages must not advance the clock until each
        // one is actually popped: after the first poll_until returns (its
        // predicate satisfied by message #1), the receiver's clock reflects
        // one receive even though the whole burst is already local.
        let cost = CostModel::cm5();
        let recv_overhead = cost.recv_overhead;
        let r = Spmd::builder().nprocs(2).cost(cost).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                for i in 0..10 {
                    node.send(1, i + 1);
                }
                0
            } else {
                let got = Cell::new(0u64);
                node.poll_until("first msg", |_, env| got.set(env.msg), || got.get() == 1);
                let after_one = node.stats().msgs_recv;
                assert_eq!(after_one, 1, "only the popped message is absorbed");
                let seen = Cell::new(1u64);
                node.poll_until("rest", |_, _| seen.set(seen.get() + 1), || seen.get() == 10);
                node.stats().msgs_recv
            }
        });
        assert_eq!(r.results[1], 10);
        assert!(recv_overhead > 0);
    }
}
