//! The three compiler optimizations of §4.2.
//!
//! All three are gated on the protocol registry: "We allow protocol
//! writers to specify, when registering a protocol, whether a protocol's
//! semantics allow optimizations" — an access is touched only if *every*
//! protocol the dataflow says it might run under is optimizable, and
//! "in all optimizations, code is never moved past synchronization calls".

pub mod direct;
pub mod licm;
pub mod merge;

use crate::ir::*;

/// Collect, per block, the instruction positions of the annotation triple
/// of an access id: (map, start, end).
#[derive(Debug, Default, Clone)]
pub struct AccessSites {
    /// Block and index of the `Map`.
    pub map: Option<(BlockId, usize)>,
    /// Block and index of the `Start*`.
    pub start: Option<(BlockId, usize)>,
    /// Block and index of the `End*`.
    pub end: Option<(BlockId, usize)>,
    /// True if the access is a write.
    pub is_write: bool,
}

/// Index every access's annotation positions in a function.
pub fn index_accesses(f: &IFunc) -> std::collections::HashMap<AccessId, AccessSites> {
    let mut out: std::collections::HashMap<AccessId, AccessSites> = Default::default();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            match inst {
                Inst::Map { aid, .. } => out.entry(*aid).or_default().map = Some((bi, ii)),
                Inst::StartRead { aid, .. } => out.entry(*aid).or_default().start = Some((bi, ii)),
                Inst::StartWrite { aid, .. } => {
                    let e = out.entry(*aid).or_default();
                    e.start = Some((bi, ii));
                    e.is_write = true;
                }
                Inst::EndRead { aid, .. } | Inst::EndWrite { aid, .. } => {
                    out.entry(*aid).or_default().end = Some((bi, ii))
                }
                _ => {}
            }
        }
    }
    out
}
