//! Per-node bookkeeping for one shared region.
//!
//! Region data lives in an `Arc<[u64]>` so protocol messages can carry the
//! payload zero-copy: snapshotting for the wire ([`RegionEntry::share_data`])
//! is a refcount bump, and installing a received full-region payload
//! ([`RegionEntry::install_shared`]) is a pointer swap. The invariant that
//! makes this safe is that *every* local mutation goes through
//! [`RegionEntry::with_data_mut`], which copies-on-write when the buffer is
//! shared — an outstanding wire snapshot (or another node's installed
//! alias) is therefore never observably mutated.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::ids::{RegionId, SpaceId};
use crate::protocol::Actions;

/// Get a mutable view of an `Arc<[u64]>` buffer, copying first if the
/// buffer is shared. (`Arc::make_mut` requires `Sized`, hence manual COW.)
fn cow_slice(slot: &mut Arc<[u64]>) -> &mut [u64] {
    if Arc::strong_count(slot) != 1 || Arc::weak_count(slot) != 0 {
        *slot = Arc::from(&slot[..]);
    }
    Arc::get_mut(slot).expect("uniquely owned after copy-on-write")
}

/// Node-local state for one region: the cached data, access bookkeeping,
/// and a bag of protocol-owned fields.
///
/// Rather than a `Box<dyn Any>` per region, protocols share a fixed set of
/// fields that cover what real directory protocols keep per line: a state
/// code, a sharer bitmask, an owner, an outstanding-ack count, a scalar, a
/// blocked-request queue and an optional twin buffer. Each protocol
/// documents its own interpretation. This keeps the per-region footprint
/// flat and the hot path allocation-free.
pub struct RegionEntry {
    /// The region's global id (home rank is `id.home()`).
    pub id: RegionId,
    /// The space this region was allocated from. Fixed for the region's
    /// lifetime; the space's *protocol* may change.
    pub space: SpaceId,
    /// Size of the region in 8-byte words.
    pub words: usize,
    /// The local copy of the region's data. At the home node this is the
    /// master copy; elsewhere it is a cache whose validity the protocol
    /// tracks in `st`. Shared zero-copy with in-flight messages; mutate
    /// only through [`RegionEntry::with_data_mut`].
    pub data: RefCell<Arc<[u64]>>,
    /// Map count (maps nest, per CRL semantics).
    pub mapped: Cell<u32>,
    /// Number of open read sections.
    pub read_active: Cell<u32>,
    /// Number of open write sections.
    pub write_active: Cell<u32>,

    // ---- protocol-owned fields ----
    /// Fast mask: the set of annotations that are state-preserving no-ops
    /// in the region's *current* state, maintained by the protocol at its
    /// state transitions (the analogue of CRL's in-cache fast path). The
    /// runtime checks this before dispatching a hook; a set bit promises
    /// the hook would neither send messages nor mutate any entry or space
    /// state, so the runtime may skip it entirely. Empty = always slow.
    pub fast: Cell<Actions>,
    /// Protocol-defined state code.
    pub st: Cell<u32>,
    /// Home-side sharer bitmask (bit *i* = node *i* holds a copy).
    pub sharers: Cell<u64>,
    /// Home-side exclusive owner rank, or -1.
    pub owner: Cell<i32>,
    /// Outstanding acknowledgements (invalidations, flushes, deltas...).
    pub pending: Cell<u32>,
    /// Protocol-defined scalar (epoch numbers, fetched tickets, ...).
    pub aux: Cell<u64>,
    /// Requests that arrived while the region was in a transient state,
    /// replayed when the region quiesces: `(from, op, arg)`.
    pub blocked: RefCell<VecDeque<(u16, u16, u64)>>,
    /// Twin buffer for diffing protocols (pipelined delta writes). Taken
    /// as a zero-copy snapshot of `data`; copy-on-write keeps it frozen.
    pub twin: RefCell<Option<Arc<[u64]>>>,

    // ---- default region lock (home side + requester side) ----
    /// Home side: lock currently held by someone.
    pub lock_held: Cell<bool>,
    /// Home side: FIFO of waiting rank(s).
    pub lock_queue: RefCell<VecDeque<u16>>,
    /// Requester side: our pending lock request has been granted.
    pub lock_granted: Cell<bool>,
}

impl RegionEntry {
    /// Create the entry with zeroed data (home allocation or fresh cache).
    pub fn new(id: RegionId, space: SpaceId, words: usize) -> Self {
        RegionEntry {
            id,
            space,
            words,
            data: RefCell::new(Arc::from(vec![0u64; words])),
            mapped: Cell::new(0),
            read_active: Cell::new(0),
            write_active: Cell::new(0),
            fast: Cell::new(Actions::empty()),
            st: Cell::new(0),
            sharers: Cell::new(0),
            owner: Cell::new(-1),
            pending: Cell::new(0),
            aux: Cell::new(0),
            blocked: RefCell::new(VecDeque::new()),
            twin: RefCell::new(None),
            lock_held: Cell::new(false),
            lock_queue: RefCell::new(VecDeque::new()),
            lock_granted: Cell::new(false),
        }
    }

    /// Whether this node is the region's home.
    pub fn is_home_of(&self, rank: usize) -> bool {
        self.id.home() == rank
    }

    /// Whether any access section (read or write) is currently open.
    pub fn busy(&self) -> bool {
        self.read_active.get() > 0 || self.write_active.get() > 0
    }

    /// Snapshot the current data for the wire: a refcount bump, not a
    /// copy. The snapshot stays frozen because all local mutation goes
    /// through [`RegionEntry::with_data_mut`] (copy-on-write).
    pub fn share_data(&self) -> Arc<[u64]> {
        self.data.borrow().clone()
    }

    /// Snapshot the current data (bulk transfer payload). Zero-copy alias
    /// of [`RegionEntry::share_data`], kept under the historical name.
    pub fn clone_data(&self) -> Arc<[u64]> {
        self.share_data()
    }

    /// Mutate the region data in place, copying first if the buffer is
    /// aliased by an in-flight message, a twin, or another entry.
    pub fn with_data_mut<R>(&self, f: impl FnOnce(&mut [u64]) -> R) -> R {
        let mut slot = self.data.borrow_mut();
        f(cow_slice(&mut slot))
    }

    /// Overwrite the local copy with incoming data.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the region size.
    pub fn install_data(&self, incoming: &[u64]) {
        let mut slot = self.data.borrow_mut();
        assert_eq!(incoming.len(), slot.len(), "payload size mismatch for {}", self.id);
        cow_slice(&mut slot).copy_from_slice(incoming);
    }

    /// Adopt a full-region payload by reference: a pointer swap, aliasing
    /// the sender's buffer. Copy-on-write protects both sides afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the region size.
    pub fn install_shared(&self, incoming: Arc<[u64]>) {
        let mut slot = self.data.borrow_mut();
        assert_eq!(incoming.len(), slot.len(), "payload size mismatch for {}", self.id);
        *slot = incoming;
    }

    /// Add `rank` to the sharer bitmask.
    pub fn add_sharer(&self, rank: usize) {
        self.sharers.set(self.sharers.get() | (1 << rank));
    }

    /// Remove `rank` from the sharer bitmask.
    pub fn drop_sharer(&self, rank: usize) {
        self.sharers.set(self.sharers.get() & !(1 << rank));
    }

    /// Whether `rank` is in the sharer bitmask.
    pub fn is_sharer(&self, rank: usize) -> bool {
        self.sharers.get() & (1 << rank) != 0
    }

    /// Iterate the ranks present in the sharer bitmask.
    pub fn sharer_ranks(&self) -> impl Iterator<Item = usize> {
        let mask = self.sharers.get();
        (0..64).filter(move |i| mask & (1 << i) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(words: usize) -> RegionEntry {
        RegionEntry::new(RegionId::new(2, 5), SpaceId(1), words)
    }

    #[test]
    fn fresh_entry_is_zeroed_and_quiescent() {
        let e = entry(4);
        assert_eq!(&**e.data.borrow(), &[0u64; 4]);
        assert!(!e.busy());
        assert_eq!(e.owner.get(), -1);
        assert!(e.is_home_of(2));
        assert!(!e.is_home_of(0));
    }

    #[test]
    fn sharer_bitmask_ops() {
        let e = entry(1);
        e.add_sharer(0);
        e.add_sharer(5);
        e.add_sharer(63);
        assert!(e.is_sharer(5));
        assert_eq!(e.sharer_ranks().collect::<Vec<_>>(), vec![0, 5, 63]);
        e.drop_sharer(5);
        assert!(!e.is_sharer(5));
        assert_eq!(e.sharer_ranks().collect::<Vec<_>>(), vec![0, 63]);
    }

    #[test]
    fn data_install_round_trip() {
        let e = entry(3);
        e.install_data(&[7, 8, 9]);
        assert_eq!(&*e.clone_data(), &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn mismatched_install_panics() {
        entry(3).install_data(&[1, 2]);
    }

    #[test]
    fn cow_write_never_mutates_outstanding_snapshot() {
        let e = entry(3);
        e.install_data(&[1, 2, 3]);
        let snap = e.share_data();
        e.with_data_mut(|d| d[0] = 99);
        assert_eq!(&*snap, &[1, 2, 3], "wire snapshot must stay frozen");
        assert_eq!(&*e.share_data(), &[99, 2, 3]);
    }

    #[test]
    fn install_shared_aliases_until_first_write() {
        let e = entry(2);
        let payload: Arc<[u64]> = Arc::from(vec![5, 6]);
        e.install_shared(payload.clone());
        assert!(Arc::ptr_eq(&payload, &e.data.borrow()), "install is a pointer swap");
        e.with_data_mut(|d| d[1] = 7);
        assert_eq!(&*payload, &[5, 6], "sender's buffer untouched by receiver write");
        assert_eq!(&*e.share_data(), &[5, 7]);
    }

    #[test]
    fn unshared_mutation_stays_in_place() {
        let e = entry(2);
        e.install_data(&[3, 4]);
        let p0 = e.data.borrow().as_ptr();
        e.with_data_mut(|d| d[0] = 8);
        assert_eq!(p0, e.data.borrow().as_ptr(), "no copy when uniquely owned");
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn mismatched_install_shared_panics() {
        entry(3).install_shared(Arc::from(vec![1, 2]));
    }

    #[test]
    fn busy_tracks_open_sections() {
        let e = entry(1);
        e.read_active.set(1);
        assert!(e.busy());
        e.read_active.set(0);
        e.write_active.set(2);
        assert!(e.busy());
        e.write_active.set(0);
        assert!(!e.busy());
    }
}
