//! The runtime-agnostic DSM interface the benchmarks are written against.
//!
//! `Dsm` is the intersection of the Ace and CRL programming models: the
//! region annotation set, synchronization, and collective id exchange.
//! Protocol management (`new_space` / `change_protocol`) is part of the
//! trait so one application source supports both systems; on CRL those
//! calls are inert, exactly as porting the paper's apps to CRL erased the
//! space annotations.

use std::sync::Arc;

use ace_core::{AceRt, Pod, RegionId, SpaceId};
use ace_crl::CrlRt;
use ace_protocols::{make, ProtoSpec};

/// Region-based DSM operations shared by Ace and CRL.
pub trait Dsm {
    /// This node's rank.
    fn rank(&self) -> usize;
    /// Number of nodes.
    fn nprocs(&self) -> usize;

    /// Create a space bound to `spec` (Ace) or return a dummy (CRL).
    fn new_space(&self, spec: ProtoSpec) -> u32;
    /// Change a space's protocol (Ace) or do nothing (CRL). Collective.
    fn change_protocol(&self, space: u32, spec: ProtoSpec);

    /// Allocate a region of `words` 8-byte words from `space`.
    fn gmalloc_words(&self, space: u32, words: usize) -> u64;
    /// Allocate a region sized for `count` `T`s from `space`.
    fn gmalloc<T: Pod>(&self, space: u32, count: usize) -> u64 {
        self.gmalloc_words(space, ace_core::pod::words_for::<T>(count).max(1))
    }

    /// Map a region.
    fn map(&self, r: u64);
    /// Unmap a region.
    fn unmap(&self, r: u64);
    /// Open a read section.
    fn start_read(&self, r: u64);
    /// Close a read section.
    fn end_read(&self, r: u64);
    /// Open a write section.
    fn start_write(&self, r: u64);
    /// Close a write section.
    fn end_write(&self, r: u64);

    /// Typed read access (inside a section).
    fn with<T: Pod, R>(&self, r: u64, f: impl FnOnce(&[T]) -> R) -> R;
    /// Typed write access (inside a write section).
    fn with_mut<T: Pod, R>(&self, r: u64, f: impl FnOnce(&mut [T]) -> R) -> R;

    /// Barrier with the semantics of `space`'s protocol (global on CRL).
    fn barrier(&self, space: u32);
    /// Region lock.
    fn lock(&self, r: u64);
    /// Region unlock.
    fn unlock(&self, r: u64);

    /// Broadcast words from `root`. Collective. The payload is shared
    /// zero-copy with the wire messages.
    fn bcast(&self, root: usize, vals: &[u64]) -> Arc<[u64]>;
    /// Gather every node's words at `root` (rank-ordered; `Some` only at
    /// the root). Collective.
    fn gather(&self, root: usize, vals: &[u64]) -> Option<Vec<Arc<[u64]>>>;
    /// All-reduce one u64. Collective.
    fn allreduce_u64(&self, val: u64, op: fn(u64, u64) -> u64) -> u64;
    /// All-reduce one f64. Collective.
    fn allreduce_f64(&self, val: f64, op: fn(f64, f64) -> f64) -> f64;

    /// Charge floating-point work to the virtual clock.
    fn charge_flops(&self, n: u64);
    /// Charge memory-access work to the virtual clock.
    fn charge_mem(&self, n: u64);
}

/// The Ace implementation of [`Dsm`].
pub struct AceDsm<'a, 'n> {
    rt: &'a AceRt<'n>,
}

impl<'a, 'n> AceDsm<'a, 'n> {
    /// Wrap an Ace runtime.
    pub fn new(rt: &'a AceRt<'n>) -> Self {
        AceDsm { rt }
    }

    /// The wrapped runtime.
    pub fn rt(&self) -> &'a AceRt<'n> {
        self.rt
    }
}

impl Dsm for AceDsm<'_, '_> {
    fn rank(&self) -> usize {
        self.rt.rank()
    }
    fn nprocs(&self) -> usize {
        self.rt.nprocs()
    }
    fn new_space(&self, spec: ProtoSpec) -> u32 {
        self.rt.new_space(make(spec)).0
    }
    fn change_protocol(&self, space: u32, spec: ProtoSpec) {
        self.rt.change_protocol(SpaceId(space), make(spec));
    }
    fn gmalloc_words(&self, space: u32, words: usize) -> u64 {
        self.rt.gmalloc_words(SpaceId(space), words).0
    }
    fn map(&self, r: u64) {
        self.rt.map(RegionId(r));
    }
    fn unmap(&self, r: u64) {
        self.rt.unmap(RegionId(r));
    }
    fn start_read(&self, r: u64) {
        self.rt.start_read(RegionId(r));
    }
    fn end_read(&self, r: u64) {
        self.rt.end_read(RegionId(r));
    }
    fn start_write(&self, r: u64) {
        self.rt.start_write(RegionId(r));
    }
    fn end_write(&self, r: u64) {
        self.rt.end_write(RegionId(r));
    }
    fn with<T: Pod, R>(&self, r: u64, f: impl FnOnce(&[T]) -> R) -> R {
        self.rt.with(RegionId(r), f)
    }
    fn with_mut<T: Pod, R>(&self, r: u64, f: impl FnOnce(&mut [T]) -> R) -> R {
        self.rt.with_mut(RegionId(r), f)
    }
    fn barrier(&self, space: u32) {
        self.rt.barrier(SpaceId(space));
    }
    fn lock(&self, r: u64) {
        self.rt.lock(RegionId(r));
    }
    fn unlock(&self, r: u64) {
        self.rt.unlock(RegionId(r));
    }
    fn bcast(&self, root: usize, vals: &[u64]) -> Arc<[u64]> {
        self.rt.bcast(root, vals)
    }
    fn gather(&self, root: usize, vals: &[u64]) -> Option<Vec<Arc<[u64]>>> {
        self.rt.gather(root, vals)
    }
    fn allreduce_u64(&self, val: u64, op: fn(u64, u64) -> u64) -> u64 {
        self.rt.allreduce_u64(val, op)
    }
    fn allreduce_f64(&self, val: f64, op: fn(f64, f64) -> f64) -> f64 {
        self.rt.allreduce_f64(val, op)
    }
    fn charge_flops(&self, n: u64) {
        self.rt.charge_flops(n);
    }
    fn charge_mem(&self, n: u64) {
        self.rt.charge_mem(n);
    }
}

/// The CRL implementation of [`Dsm`]. Space/protocol calls are inert.
pub struct CrlDsm<'a, 'n> {
    crl: &'a CrlRt<'n>,
}

impl<'a, 'n> CrlDsm<'a, 'n> {
    /// Wrap a CRL runtime.
    pub fn new(crl: &'a CrlRt<'n>) -> Self {
        CrlDsm { crl }
    }

    /// The wrapped runtime.
    pub fn crl(&self) -> &'a CrlRt<'n> {
        self.crl
    }
}

impl Dsm for CrlDsm<'_, '_> {
    fn rank(&self) -> usize {
        self.crl.rank()
    }
    fn nprocs(&self) -> usize {
        self.crl.nprocs()
    }
    fn new_space(&self, _spec: ProtoSpec) -> u32 {
        0 // CRL has one fixed protocol and no spaces
    }
    fn change_protocol(&self, _space: u32, _spec: ProtoSpec) {}
    fn gmalloc_words(&self, _space: u32, words: usize) -> u64 {
        self.crl.create_words(words).0
    }
    fn map(&self, r: u64) {
        self.crl.map(RegionId(r));
    }
    fn unmap(&self, r: u64) {
        self.crl.unmap(RegionId(r));
    }
    fn start_read(&self, r: u64) {
        self.crl.start_read(RegionId(r));
    }
    fn end_read(&self, r: u64) {
        self.crl.end_read(RegionId(r));
    }
    fn start_write(&self, r: u64) {
        self.crl.start_write(RegionId(r));
    }
    fn end_write(&self, r: u64) {
        self.crl.end_write(RegionId(r));
    }
    fn with<T: Pod, R>(&self, r: u64, f: impl FnOnce(&[T]) -> R) -> R {
        self.crl.with(RegionId(r), f)
    }
    fn with_mut<T: Pod, R>(&self, r: u64, f: impl FnOnce(&mut [T]) -> R) -> R {
        self.crl.with_mut(RegionId(r), f)
    }
    fn barrier(&self, _space: u32) {
        self.crl.barrier();
    }
    fn lock(&self, r: u64) {
        self.crl.lock(RegionId(r));
    }
    fn unlock(&self, r: u64) {
        self.crl.unlock(RegionId(r));
    }
    fn bcast(&self, root: usize, vals: &[u64]) -> Arc<[u64]> {
        self.crl.bcast(root, vals)
    }
    fn gather(&self, root: usize, vals: &[u64]) -> Option<Vec<Arc<[u64]>>> {
        self.crl.gather(root, vals)
    }
    fn allreduce_u64(&self, val: u64, op: fn(u64, u64) -> u64) -> u64 {
        self.crl.allreduce_u64(val, op)
    }
    fn allreduce_f64(&self, val: f64, op: fn(f64, f64) -> f64) -> f64 {
        self.crl.allreduce_f64(val, op)
    }
    fn charge_flops(&self, n: u64) {
        self.crl.charge_flops(n);
    }
    fn charge_mem(&self, n: u64) {
        self.crl.charge_mem(n);
    }
}

/// Every node's bootstrap id list, exchanged machine-wide: one shared
/// flat buffer plus an offset table, so an n-node exchange ships (and
/// stores) O(total ids) once instead of n separate `Arc` payloads per
/// node.
///
/// Layout of `data`: words `0..=n` are offsets into the flat id area
/// (relative to its start, so `rank(r)` is the subslice between offsets
/// `r` and `r+1`), followed by the ids of rank 0, rank 1, ... rank n-1.
#[derive(Clone)]
pub struct IdMap {
    data: Arc<[u64]>,
    n: usize,
}

impl IdMap {
    /// Number of ranks in the exchange.
    pub fn nprocs(&self) -> usize {
        self.n
    }

    /// The ids rank `r` contributed.
    pub fn rank(&self, r: usize) -> &[u64] {
        let base = self.n + 1;
        let (lo, hi) = (self.data[r] as usize, self.data[r + 1] as usize);
        &self.data[base + lo..base + hi]
    }

    /// Iterate every rank's id slice, in rank order.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> {
        (0..self.n).map(|r| self.rank(r))
    }
}

/// Distribute each node's id list to everyone: node `k`'s `ids` land in
/// slot `k` of the returned [`IdMap`]. A common setup step for the apps
/// (the analogue of storing `address_t`s into shared bootstrap
/// structures).
///
/// Runs as gather-at-0 + one broadcast — `2(n-1)` messages machine-wide
/// instead of the `n(n-1)` of every rank broadcasting its own list, and
/// every node ends up aliasing one shared buffer instead of holding `n`
/// payloads. At 4096 nodes that is the difference between setup being
/// O(n) and O(n²) in both messages and memory.
pub fn exchange_ids<D: Dsm>(d: &D, ids: &[u64]) -> IdMap {
    let n = d.nprocs();
    let packed = match d.gather(0, ids) {
        Some(per_rank) => {
            // Root: offsets first (n+1 words, relative to the flat id
            // area), then everyone's ids concatenated in rank order.
            let total: usize = per_rank.iter().map(|v| v.len()).sum();
            let mut packed = Vec::with_capacity(n + 1 + total);
            let mut off = 0u64;
            packed.push(0);
            for v in &per_rank {
                off += v.len() as u64;
                packed.push(off);
            }
            for v in &per_rank {
                packed.extend_from_slice(v);
            }
            d.bcast(0, &packed)
        }
        None => d.bcast(0, &[]),
    };
    IdMap { data: packed, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel};
    use ace_crl::run_crl;

    /// A tiny kernel exercising every trait method, used to check the two
    /// adapters agree.
    fn kernel<D: Dsm>(d: &D) -> u64 {
        let s = d.new_space(ProtoSpec::Sc);
        let mine = d.gmalloc::<u64>(s, 4);
        let all = exchange_ids(d, &[mine]);
        assert_eq!(all.nprocs(), d.nprocs());
        assert_eq!(all.rank(d.rank()), &[mine]);
        for ids in all.iter() {
            d.map(ids[0]);
        }
        d.start_write(mine);
        d.with_mut::<u64, _>(mine, |v| v[0] = d.rank() as u64 + 1);
        d.end_write(mine);
        d.barrier(s);
        let mut sum = 0;
        for r in 0..all.nprocs() {
            let ids = all.rank(r);
            d.start_read(ids[0]);
            sum += d.with::<u64, _>(ids[0], |v| v[0]);
            d.end_read(ids[0]);
        }
        d.barrier(s);
        d.allreduce_u64(sum, |a, b| a.max(b))
    }

    #[test]
    fn adapters_agree() {
        let n = 3;
        let want = (1..=n as u64).sum::<u64>();
        let a = run_ace(n, CostModel::free(), |rt| kernel(&AceDsm::new(rt)));
        let c = run_crl(n, CostModel::free(), |crl| kernel(&CrlDsm::new(crl)));
        assert_eq!(a.results, vec![want; n]);
        assert_eq!(c.results, vec![want; n]);
    }
}
