//! Operation counters: how often each runtime primitive executed.
//!
//! These drive the compiler evaluation (Table 4 reports the effect of
//! removing/merging protocol calls) and the protocol comparisons.

/// Per-node counts of runtime primitive invocations.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpCounters {
    /// `map` calls that found a local entry.
    pub map_hits: u64,
    /// `map` calls that had to fetch metadata from home.
    pub map_misses: u64,
    /// `unmap` calls.
    pub unmaps: u64,
    /// `start_read` calls.
    pub start_reads: u64,
    /// `start_read` calls that required communication.
    pub read_misses: u64,
    /// `start_write` calls.
    pub start_writes: u64,
    /// `start_write` calls that required communication.
    pub write_misses: u64,
    /// `end_read` + `end_write` calls.
    pub ends: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Protocol messages handled on this node.
    pub proto_msgs: u64,
    /// Calls dispatched through a space (indirect protocol dispatch).
    pub dispatched: u64,
    /// Calls made directly to a known protocol (compiler direct dispatch,
    /// or a fixed-protocol runtime).
    pub direct: u64,
    /// Access annotations absorbed by the per-region fast mask: the hook
    /// was a state-preserving no-op in the current region state, so the
    /// runtime skipped dispatch (and span construction) entirely.
    pub fast_hits: u64,
    /// Region lookups satisfied by the inline direct-mapped cache.
    pub region_cache_hits: u64,
    /// Region lookups that fell through to the hash table.
    pub region_cache_misses: u64,
    /// Logical messages this node sent (one per `send` call), folded in
    /// from the substrate's [`ace_machine::NodeStats`] by `AceRt::counters`.
    pub logical_msgs: u64,
    /// Wire envelopes this node sent; `<= logical_msgs`, with the gap
    /// being the sends that coalescing batched into shared envelopes.
    pub wire_msgs: u64,
    /// Slow-path access starts on a non-home region whose cached copy was
    /// invalid (cross-protocol base state [`crate::rt::REMOTE_INVALID`]):
    /// the accesses that force a fetch from home. Counted uniformly by the
    /// runtime, not by protocols, so adaptive-vs-static comparisons see
    /// identical numbers for identical access sequences.
    pub remote_misses: u64,
    /// Slow-path `start_write` calls on a non-home region holding a valid
    /// *shared* copy (state code 2 by cross-protocol convention): read
    /// copies that had to be upgraded to write ownership.
    pub upgrades: u64,
    /// Protocol switches this node committed: `change_protocol` calls plus
    /// adaptive-engine flush-point switches (each also bumps the node's
    /// wire-visible switch epoch).
    pub switches: u64,
}

impl OpCounters {
    /// Total annotation-style calls (maps + starts + ends + unmaps), the
    /// quantity the paper's compiler optimizations reduce.
    pub fn total_annotations(&self) -> u64 {
        self.map_hits
            + self.map_misses
            + self.unmaps
            + self.start_reads
            + self.start_writes
            + self.ends
    }

    /// Element-wise sum, for machine-wide aggregation.
    pub fn merge(&mut self, o: &OpCounters) {
        self.map_hits += o.map_hits;
        self.map_misses += o.map_misses;
        self.unmaps += o.unmaps;
        self.start_reads += o.start_reads;
        self.read_misses += o.read_misses;
        self.start_writes += o.start_writes;
        self.write_misses += o.write_misses;
        self.ends += o.ends;
        self.barriers += o.barriers;
        self.locks += o.locks;
        self.proto_msgs += o.proto_msgs;
        self.dispatched += o.dispatched;
        self.direct += o.direct;
        self.fast_hits += o.fast_hits;
        self.region_cache_hits += o.region_cache_hits;
        self.region_cache_misses += o.region_cache_misses;
        self.logical_msgs += o.logical_msgs;
        self.wire_msgs += o.wire_msgs;
        self.remote_misses += o.remote_misses;
        self.upgrades += o.upgrades;
        self.switches += o.switches;
    }

    /// Fraction of region lookups absorbed by the inline cache, or `None`
    /// before any lookup ran.
    pub fn region_cache_hit_rate(&self) -> Option<f64> {
        let total = self.region_cache_hits + self.region_cache_misses;
        (total > 0).then(|| self.region_cache_hits as f64 / total as f64)
    }

    /// Fraction of access annotations absorbed by the per-region fast
    /// mask (fast hits over fast + dispatched + direct calls), or `None`
    /// before any annotation ran.
    pub fn fast_hit_rate(&self) -> Option<f64> {
        let total = self.fast_hits + self.dispatched + self.direct;
        (total > 0).then(|| self.fast_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = OpCounters { map_hits: 1, start_reads: 2, ..Default::default() };
        let b = OpCounters { map_hits: 10, ends: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.map_hits, 11);
        assert_eq!(a.start_reads, 2);
        assert_eq!(a.ends, 5);
    }

    #[test]
    fn annotation_total() {
        let c = OpCounters {
            map_hits: 1,
            map_misses: 2,
            unmaps: 3,
            start_reads: 4,
            start_writes: 5,
            ends: 6,
            barriers: 99,
            ..Default::default()
        };
        assert_eq!(c.total_annotations(), 21);
    }
}
