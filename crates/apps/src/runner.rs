//! Launch helpers: run a benchmark kernel on either runtime and collect a
//! uniform outcome record for the harnesses.

use std::time::Duration;

use ace_core::{run_ace_with, CostModel, MachineBuilder, MachineTrace, OpCounters, Spmd};
use ace_crl::run_crl_with;

use crate::dsm::{AceDsm, CrlDsm};

/// Everything a harness needs from one benchmark run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The app's deterministic verification value (node 0's copy).
    pub verification: f64,
    /// Simulated completion time in nanoseconds.
    pub sim_ns: u64,
    /// Wall-clock duration of the simulation.
    pub wall: Duration,
    /// Total logical messages across all nodes (one per `send` call).
    pub msgs: u64,
    /// Total wire envelopes across all nodes; `<= msgs`, with the gap
    /// being the sends that coalescing batched into shared envelopes.
    pub wire_msgs: u64,
    /// Total payload bytes across all nodes.
    pub bytes: u64,
    /// Machine-wide aggregated operation counters.
    pub counters: OpCounters,
    /// Total conformance violations recorded across all nodes (always 0
    /// unless the run was launched with a [`ace_core::CheckMode`]).
    pub violations: u64,
    /// Merged event trace, when the run was launched with tracing on.
    pub trace: Option<MachineTrace>,
}

impl RunOutcome {
    /// Simulated time in milliseconds (the unit the tables print).
    pub fn sim_ms(&self) -> f64 {
        self.sim_ns as f64 / 1e6
    }
}

/// Run `f` on the Ace runtime and collect the outcome.
pub fn launch_ace<F>(nprocs: usize, cost: CostModel, f: F) -> RunOutcome
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    launch_ace_with(Spmd::builder().nprocs(nprocs).cost(cost), f)
}

/// Run `f` on the Ace runtime with a fully-configured machine (tracing,
/// watchdog, drain batch).
pub fn launch_ace_with<F>(builder: MachineBuilder, f: F) -> RunOutcome
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace_with(builder, |rt| {
        let d = AceDsm::new(rt);
        let v = f(&d);
        (v, rt.counters())
    });
    collect(r)
}

/// Run `f` on the CRL baseline and collect the outcome.
pub fn launch_crl<F>(nprocs: usize, cost: CostModel, f: F) -> RunOutcome
where
    F: Fn(&CrlDsm) -> f64 + Sync,
{
    launch_crl_with(Spmd::builder().nprocs(nprocs).cost(cost), f)
}

/// Run `f` on the CRL baseline with a fully-configured machine.
pub fn launch_crl_with<F>(builder: MachineBuilder, f: F) -> RunOutcome
where
    F: Fn(&CrlDsm) -> f64 + Sync,
{
    let r = run_crl_with(builder, |crl| {
        let d = CrlDsm::new(crl);
        let v = f(&d);
        (v, crl.counters())
    });
    collect(r)
}

fn collect(r: ace_core::SpmdResult<(f64, OpCounters)>) -> RunOutcome {
    let mut counters = OpCounters::default();
    for (_, c) in &r.results {
        counters.merge(c);
    }
    RunOutcome {
        verification: r.results[0].0,
        sim_ns: r.sim_ns,
        wall: r.wall,
        msgs: r.stats.total_msgs(),
        wire_msgs: r.stats.total_wire_msgs(),
        bytes: r.stats.total_bytes(),
        counters,
        violations: r.stats.total_violations(),
        trace: r.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsm::Dsm;
    use ace_core::TraceConfig;

    #[test]
    fn outcomes_carry_stats() {
        let out = launch_ace(2, CostModel::cm5(), |d| {
            let s = d.new_space(ace_protocols::ProtoSpec::Sc);
            d.barrier(s);
            42.0
        });
        assert_eq!(out.verification, 42.0);
        assert!(out.msgs > 0, "barrier exchanges messages");
        assert!(out.sim_ns > 0);
        assert_eq!(out.counters.barriers, 2);
        assert!(out.trace.is_none(), "tracing is off by default");
    }

    #[test]
    fn traced_launch_carries_trace() {
        let b = Spmd::builder().nprocs(2).cost(CostModel::cm5()).trace(TraceConfig::on());
        let out = launch_ace_with(b, |d| {
            let s = d.new_space(ace_protocols::ProtoSpec::Sc);
            d.barrier(s);
            1.0
        });
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.send_count(), out.wire_msgs, "one Send event per wire envelope");
        assert_eq!(trace.logical_send_count(), out.msgs);
        assert!(out.wire_msgs <= out.msgs);
        assert!(trace.event_count() > 0);
    }
}
