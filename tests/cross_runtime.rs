//! Integration: the five benchmarks produce identical (or
//! fp-tolerance-equal) results on the Ace runtime, on the CRL baseline,
//! and under every protocol assignment — the paper's same-source
//! methodology, verified end to end.

use ace::apps::runner::{launch_ace, launch_crl};
use ace::apps::{barnes, bsc, em3d, tsp, water, Variant};
use ace::core::CostModel;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn em3d_all_runtimes_and_protocols_agree() {
    let p = em3d::Params::small();
    let a = launch_ace(4, CostModel::cm5(), |d| em3d::run(d, &p, Variant::Sc));
    let c = launch_crl(4, CostModel::cm5(), |d| em3d::run(d, &p, Variant::Sc));
    let u = launch_ace(4, CostModel::cm5(), |d| em3d::run(d, &p, Variant::Custom));
    assert_eq!(a.verification, c.verification);
    assert_eq!(a.verification, u.verification);
}

#[test]
fn barnes_all_runtimes_and_protocols_agree() {
    let p = barnes::Params::small();
    let a = launch_ace(4, CostModel::cm5(), |d| barnes::run(d, &p, Variant::Sc));
    let c = launch_crl(4, CostModel::cm5(), |d| barnes::run(d, &p, Variant::Sc));
    let u = launch_ace(4, CostModel::cm5(), |d| barnes::run(d, &p, Variant::Custom));
    assert_eq!(a.verification, c.verification);
    assert_eq!(a.verification, u.verification);
}

#[test]
fn bsc_all_runtimes_and_protocols_agree() {
    let p = bsc::Params::small();
    let a = launch_ace(4, CostModel::cm5(), |d| bsc::run(d, &p, Variant::Sc));
    let c = launch_crl(4, CostModel::cm5(), |d| bsc::run(d, &p, Variant::Sc));
    let u = launch_ace(4, CostModel::cm5(), |d| bsc::run(d, &p, Variant::Custom));
    assert!(close(a.verification, c.verification));
    assert!(close(a.verification, u.verification));
}

#[test]
fn tsp_finds_the_optimum_everywhere() {
    let p = tsp::Params::small();
    let want = tsp::reference(&p) as f64;
    for nprocs in [1, 3, 6] {
        let a = launch_ace(nprocs, CostModel::cm5(), |d| tsp::run(d, &p, Variant::Sc));
        let u = launch_ace(nprocs, CostModel::cm5(), |d| tsp::run(d, &p, Variant::Custom));
        let c = launch_crl(nprocs, CostModel::cm5(), |d| tsp::run(d, &p, Variant::Sc));
        assert_eq!(a.verification, want, "ace sc at {nprocs}");
        assert_eq!(u.verification, want, "ace custom at {nprocs}");
        assert_eq!(c.verification, want, "crl at {nprocs}");
    }
}

#[test]
fn water_agrees_within_fp_tolerance() {
    let p = water::Params::small();
    let a = launch_ace(4, CostModel::cm5(), |d| water::run(d, &p, Variant::Sc));
    let c = launch_crl(4, CostModel::cm5(), |d| water::run(d, &p, Variant::Sc));
    let u = launch_ace(4, CostModel::cm5(), |d| water::run(d, &p, Variant::Custom));
    assert!(close(a.verification, c.verification));
    assert!(close(a.verification, u.verification));
}

#[test]
fn repeated_runs_are_deterministic() {
    // Thread scheduling varies between runs; results must not. (The EM3D
    // *workload* is seeded per rank, so this holds per processor count.)
    let p = em3d::Params::small();
    let base = launch_ace(4, CostModel::cm5(), |d| em3d::run(d, &p, Variant::Sc)).verification;
    for _ in 0..3 {
        let v = launch_ace(4, CostModel::cm5(), |d| em3d::run(d, &p, Variant::Custom));
        assert_eq!(v.verification, base, "em3d diverged between runs");
    }
}

#[test]
fn custom_protocols_reduce_traffic_on_the_wins() {
    // The fig7b story in miniature: em3d, tsp, water cut messages; bsc is
    // within the same class.
    let p = em3d::Params::small();
    let sc = launch_ace(4, CostModel::cm5(), |d| em3d::run(d, &p, Variant::Sc));
    let cu = launch_ace(4, CostModel::cm5(), |d| em3d::run(d, &p, Variant::Custom));
    assert!(cu.msgs < sc.msgs);

    let p = water::Params::small();
    let sc = launch_ace(4, CostModel::cm5(), |d| water::run(d, &p, Variant::Sc));
    let cu = launch_ace(4, CostModel::cm5(), |d| water::run(d, &p, Variant::Custom));
    assert!(cu.msgs < sc.msgs);
}
