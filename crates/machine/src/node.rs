//! A simulated processor: rank, message endpoints, virtual clock, counters.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ace_trace::{EventKind, MachineTrace, NodeTrace, TraceConfig, TraceSink};

use crate::cost::CostModel;
use crate::envelope::{Envelope, MsgSize, Wire};
use crate::sched::SlotHandle;
use crate::stats::NodeStats;
use crate::transport::{Transport, TryWireError, WaitWireError};

/// How long a node's idle poll sleeps before re-checking peers and the
/// watchdog. The sleep escalates from this floor by doubling up to
/// [`IDLE_POLL_CEIL`] while nothing arrives, and snaps back to the floor
/// on any receipt — so active phases keep microsecond reactivity while a
/// long collective wait costs a handful of wakeups per second instead of
/// ten thousand. (The channel wait itself parks the thread; the escalation
/// only bounds how often a *quiet* node wakes to run its failure checks.)
const IDLE_POLL_FLOOR: Duration = Duration::from_micros(100);
const IDLE_POLL_CEIL: Duration = Duration::from_millis(20);

/// How long a blocked node waits before concluding the run is wedged.
/// Protocol bugs in a message-passing system manifest as silent hangs; the
/// watchdog converts them into a panic with the caller-provided diagnostic.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// How many messages [`Node::try_recv`] pulls off the channel per drain
/// burst. Draining in bursts amortizes the channel's synchronization over
/// many messages; the burst is bounded so a flood of incoming traffic
/// cannot starve the caller's predicate checks.
pub const DEFAULT_DRAIN_BATCH: usize = 64;

/// When to flush a destination's coalescing buffer.
///
/// Under any policy other than `Off`, [`Node::send`] appends the logical
/// message to a per-destination buffer instead of injecting a wire
/// envelope. A buffered batch is charged one `msg_latency`, one
/// [`Node::header_bytes`] header and one `send_overhead` for the whole wire
/// envelope, plus [`CostModel::pack_cost`] per sub-message — the
/// amortization that makes fine-grained protocol fan-out cheap.
///
/// Liveness rule: every blocking point flushes. [`Node::poll_until`]
/// flushes on entry and whenever a handled message leaves the local inbox
/// empty, and [`Node::recv_timeout`] flushes before blocking on the
/// channel, so no peer can deadlock waiting on a message its sender is
/// still buffering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalescePolicy {
    /// Every logical send is its own wire envelope (legacy behaviour,
    /// bit-identical to the pre-coalescing substrate).
    #[default]
    Off,
    /// Flush a destination as soon as its buffer holds N sub-messages
    /// (and at every blocking point).
    Threshold(usize),
    /// Buffer without bound; flush only at blocking points.
    FlushOnWait,
}

/// How the runtime conformance checker (`ace-check`) treats violations.
///
/// The machine layer only carries the mode and the vector-clock plumbing
/// it needs (see [`Envelope::vc`]); the actual access-control checks live
/// in the runtime layer above. Checking is metrologically invisible: no
/// mode charges virtual time or bytes, so check-on and check-off runs of
/// a conforming program report identical simulated costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// No checking; misuse falls back to the debug assertions.
    #[default]
    Off,
    /// Record violations (per-node counters, structured errors, trace
    /// events) but let the run continue.
    Log,
    /// Panic on the first violation, with the structured report as the
    /// panic message.
    Fail,
}

impl CheckMode {
    /// Whether this mode performs any checking at all.
    pub fn enabled(self) -> bool {
        self != CheckMode::Off
    }
}

/// Construction-time per-node knobs, fixed by the machine builder.
#[derive(Debug, Clone)]
pub(crate) struct NodeSetup {
    pub watchdog: Duration,
    pub drain_batch: usize,
    pub trace: TraceConfig,
    pub coalesce: CoalescePolicy,
    pub check: CheckMode,
    pub det_seed: Option<u64>,
}

impl Default for NodeSetup {
    fn default() -> Self {
        NodeSetup {
            watchdog: DEFAULT_WATCHDOG,
            drain_batch: DEFAULT_DRAIN_BATCH,
            trace: TraceConfig::off(),
            coalesce: CoalescePolicy::Off,
            check: CheckMode::Off,
            det_seed: None,
        }
    }
}

/// An inbox entry: an envelope plus its precomputed arrival time and
/// receive charge. Arrival is a pure function of the *wire* envelope
/// (send time + flight time of the wire bytes), computed once when the
/// wire message is expanded; the charge and trace event are applied when
/// the entry is popped, preserving absorb-at-pop semantics.
struct Inbound<M> {
    env: Envelope<M>,
    arrival: u64,
    /// `recv_overhead` for a single or a batch's first part; `pack_cost`
    /// (the unpack charge) for subsequent parts of the same batch.
    charge: u64,
    /// `Some((subs, wire_bytes))` on the entry that represents the wire
    /// envelope itself (a single, or a batch's first part): pop emits one
    /// Recv trace event so flow arrows stay one-per-wire-message.
    wire: Option<(u32, u32)>,
}

/// Per-destination coalescing buffers that scale to thousands of ranks: a
/// dense `Vec` of buffers at small `nprocs`, a `HashMap` keyed by the few
/// destinations actually touched above that (a 4096-node machine must not
/// pay 4096 empty `Vec`s per node), plus a dirty list so flushing visits
/// only destinations that hold messages instead of scanning every rank.
struct OutBufs<M> {
    dense: Vec<Vec<(M, usize)>>,
    sparse: HashMap<usize, Vec<(M, usize)>>,
    /// Destinations whose buffer went empty→nonempty since the last full
    /// flush. May hold duplicates (a threshold flush empties a buffer but
    /// leaves its entry); `flush_coalesced` sorts and the per-destination
    /// flush no-ops on empty, so duplicates are harmless.
    dirty: Vec<usize>,
}

/// Above this many ranks the per-destination buffers live in a map.
const DENSE_OUTBUF_MAX: usize = 256;

impl<M> OutBufs<M> {
    fn new(nprocs: usize) -> Self {
        OutBufs {
            dense: if nprocs <= DENSE_OUTBUF_MAX {
                (0..nprocs).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            sparse: HashMap::new(),
            dirty: Vec::new(),
        }
    }

    /// Append one part to `dst`'s buffer, returning the buffer's new
    /// length (for threshold checks).
    fn push(&mut self, dst: usize, part: (M, usize)) -> usize {
        let buf = if self.dense.is_empty() {
            self.sparse.entry(dst).or_default()
        } else {
            &mut self.dense[dst]
        };
        if buf.is_empty() {
            self.dirty.push(dst);
        }
        buf.push(part);
        buf.len()
    }

    /// Take `dst`'s buffered parts (empty if none).
    fn take(&mut self, dst: usize) -> Vec<(M, usize)> {
        if self.dense.is_empty() {
            self.sparse.remove(&dst).unwrap_or_default()
        } else {
            std::mem::take(&mut self.dense[dst])
        }
    }

    /// Take the dirty list, sorted ascending so flush order (and with it
    /// the per-destination `send_overhead` clock charges) is rank order —
    /// identical to the old full scan, independent of send order.
    fn take_dirty(&mut self) -> Vec<usize> {
        let mut d = std::mem::take(&mut self.dirty);
        d.sort_unstable();
        d
    }
}

/// One simulated processor.
///
/// A `Node` is owned by exactly one OS thread and is deliberately `!Sync`:
/// everything inside uses `Cell`/`RefCell`. The only cross-thread objects
/// are the channel endpoints and the shared routing table.
pub struct Node<M> {
    rank: usize,
    nprocs: usize,
    /// The wire substrate this node sends and receives through. Dynamic
    /// dispatch keeps the backend a runtime choice without a generics
    /// ripple through the protocol and application layers; the per-wire
    /// header charge is cached in `header_bytes` so the hot send path
    /// pays no virtual call for accounting.
    transport: Rc<dyn Transport<M>>,
    /// Cached [`Transport::header_bytes`].
    header_bytes: usize,
    cost: Arc<CostModel>,
    clock: Cell<u64>,
    logical_sent: Cell<u64>,
    wire_sent: Cell<u64>,
    bytes_sent: Cell<u64>,
    wire_bytes_sent: Cell<u64>,
    msgs_recv: Cell<u64>,
    watchdog: Cell<Duration>,
    /// Local inbox filled by draining the channel in bursts. Messages are
    /// *not* absorbed on drain — [`Node::absorb`] runs when a message is
    /// popped for handling, so per-message virtual-clock semantics are
    /// identical to unbatched reception (same order, same arrival math).
    inbox: RefCell<VecDeque<Inbound<M>>>,
    drain_batch: Cell<usize>,
    /// Per-destination coalescing buffers; `pending` counts buffered
    /// parts across all destinations so the common empty case is one load.
    coalesce: Cell<CoalescePolicy>,
    outbuf: RefCell<OutBufs<M>>,
    pending: Cell<usize>,
    /// This thread's handle on the execution-slot gate under
    /// [`crate::ExecBackend::Multiplexed`]; `None` under `Threads`. The
    /// slot is released exactly while parked on the channel inside
    /// [`Node::recv_timeout`] — the substrate's one true blocking point —
    /// and reacquired before touching any node state again.
    slot: Option<Rc<SlotHandle>>,
    /// Structured event sink; a no-op unless the builder enabled tracing.
    sink: TraceSink,
    /// Conformance-checking mode (the runtime layer does the checking; the
    /// node carries the mode, the vector clock, and the violation count).
    check: CheckMode,
    /// Seed for the deterministic inbox scheduler, when enabled.
    det_seed: Option<u64>,
    /// This node's vector clock (one component per rank), maintained only
    /// when `check` is enabled: ticked on sends and checker-visible
    /// events, merged from [`Envelope::vc`] on absorb.
    vc: RefCell<Vec<u64>>,
    /// Conformance violations recorded against this node.
    violations: Cell<u64>,
    /// This node's protocol-switch epoch: bumped by an adaptive engine
    /// when it commits a switch, stamped on every outgoing wire envelope
    /// (see [`Envelope::sw`]). Metrologically invisible.
    sw_epoch: Cell<u64>,
    /// Highest switch epoch seen on any incoming envelope (max-merged on
    /// absorb). During a switch handshake a node blocked in the commit
    /// barrier can observe `sw_epoch + 1` — peers past the barrier have
    /// already bumped — but never more: the engine's two-barrier commit
    /// bounds the skew, and debug builds assert it.
    sw_seen: Cell<u64>,
}

impl<M: MsgSize + Send> Node<M> {
    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        transport: Rc<dyn Transport<M>>,
        cost: Arc<CostModel>,
        slot: Option<Rc<SlotHandle>>,
        setup: &NodeSetup,
    ) -> Self {
        assert!(setup.drain_batch >= 1, "drain batch must be at least 1");
        let header_bytes = transport.header_bytes();
        Node {
            rank,
            nprocs,
            transport,
            header_bytes,
            cost,
            clock: Cell::new(0),
            logical_sent: Cell::new(0),
            wire_sent: Cell::new(0),
            bytes_sent: Cell::new(0),
            wire_bytes_sent: Cell::new(0),
            msgs_recv: Cell::new(0),
            watchdog: Cell::new(setup.watchdog),
            inbox: RefCell::new(VecDeque::new()),
            drain_batch: Cell::new(setup.drain_batch),
            coalesce: Cell::new(setup.coalesce),
            outbuf: RefCell::new(OutBufs::new(nprocs)),
            pending: Cell::new(0),
            slot,
            sink: TraceSink::new(&setup.trace),
            check: setup.check,
            det_seed: setup.det_seed,
            vc: RefCell::new(if setup.check.enabled() { vec![0; nprocs] } else { Vec::new() }),
            violations: Cell::new(0),
            sw_epoch: Cell::new(0),
            sw_seen: Cell::new(0),
        }
    }

    /// This node's rank in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Fixed per-wire-envelope header charge of the transport this node
    /// runs on ([`Transport::header_bytes`]): the simulated CM-5 header
    /// in-process, the measured framing overhead on a real backend.
    pub fn header_bytes(&self) -> usize {
        self.header_bytes
    }

    /// Current virtual clock in nanoseconds.
    pub fn now(&self) -> u64 {
        self.clock.get()
    }

    /// Advance the virtual clock by a computation charge.
    pub fn charge(&self, ns: u64) {
        self.clock.set(self.clock.get() + ns);
    }

    /// This node's event sink. Higher layers (the Ace runtime) stamp
    /// their own events — hook spans, state transitions — through it;
    /// check [`TraceSink::enabled`] before building an event.
    pub fn trace_sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Drain the node's event buffer for merging, if tracing is on.
    pub(crate) fn take_trace(&self) -> Option<NodeTrace> {
        self.sink.enabled().then(|| self.sink.take(self.rank))
    }

    /// The coalescing policy in effect.
    pub fn coalesce_policy(&self) -> CoalescePolicy {
        self.coalesce.get()
    }

    /// Number of logical messages currently buffered across destinations.
    pub fn pending_coalesced(&self) -> usize {
        self.pending.get()
    }

    /// Switch the coalescing policy, flushing anything already buffered
    /// first so no message straddles a policy change.
    pub fn set_coalesce(&self, policy: CoalescePolicy) {
        self.flush_coalesced();
        self.coalesce.set(policy);
    }

    /// The conformance-checking mode this machine was built with.
    pub fn check_mode(&self) -> CheckMode {
        self.check
    }

    /// This node's protocol-switch epoch (stamped on outgoing envelopes).
    pub fn switch_epoch(&self) -> u64 {
        self.sw_epoch.get()
    }

    /// The highest switch epoch observed on any incoming envelope.
    pub fn switch_epoch_seen(&self) -> u64 {
        self.sw_seen.get().max(self.sw_epoch.get())
    }

    /// Advance this node's switch epoch to `epoch` (monotone; called by an
    /// adaptive protocol engine at its switch commit point, between the
    /// drain barrier and the adopt barrier). Subsequent sends carry the
    /// new epoch.
    pub fn set_switch_epoch(&self, epoch: u64) {
        debug_assert!(
            epoch >= self.sw_epoch.get(),
            "switch epoch must be monotone: {} -> {epoch}",
            self.sw_epoch.get()
        );
        self.sw_epoch.set(epoch.max(self.sw_epoch.get()));
    }

    /// Record one conformance violation against this node (called by the
    /// runtime checker; surfaced through [`NodeStats::violations`]).
    pub fn note_violation(&self) {
        self.violations.set(self.violations.get() + 1);
    }

    /// Conformance violations recorded against this node so far.
    pub fn violations(&self) -> u64 {
        self.violations.get()
    }

    /// Tick this node's own vector-clock component and return a snapshot.
    /// The checker calls this at every event it wants causally ordered
    /// (section opens/closes); panics if checking is off.
    pub fn vc_tick(&self) -> Arc<[u64]> {
        debug_assert!(self.check.enabled(), "vector clocks require a check mode");
        let mut vc = self.vc.borrow_mut();
        vc[self.rank] += 1;
        vc.as_slice().into()
    }

    /// Tick-and-snapshot for an outgoing wire envelope, or `None` when
    /// checking is off (the common case: no allocation, one branch).
    fn vc_stamp(&self) -> Option<Arc<[u64]>> {
        self.check.enabled().then(|| self.vc_tick())
    }

    /// Merge a peer's vector clock into this node's (elementwise max,
    /// then tick own component) — the receive half of the piggyback.
    fn vc_merge(&self, other: &[u64]) {
        let mut vc = self.vc.borrow_mut();
        for (mine, theirs) in vc.iter_mut().zip(other) {
            *mine = (*mine).max(*theirs);
        }
        vc[self.rank] += 1;
    }

    /// Inject a message to `dst`. Under [`CoalescePolicy::Off`] this
    /// charges send overhead and emits one wire envelope; otherwise the
    /// message joins `dst`'s coalescing buffer (charging `pack_cost`) and
    /// goes out with the next flush. Sending to self is allowed (the
    /// message is delivered via the normal polling path, like a loopback
    /// active message).
    pub fn send(&self, dst: usize, msg: M) {
        debug_assert!(dst < self.nprocs, "send to nonexistent node {dst}");
        match self.coalesce.get() {
            CoalescePolicy::Off => {
                self.charge(self.cost.send_overhead);
                let bytes = msg.size_bytes() + self.header_bytes;
                self.logical_sent.set(self.logical_sent.get() + 1);
                self.wire_sent.set(self.wire_sent.get() + 1);
                self.bytes_sent.set(self.bytes_sent.get() + bytes as u64);
                self.wire_bytes_sent.set(self.wire_bytes_sent.get() + bytes as u64);
                if self.sink.enabled() {
                    let t = self.clock.get();
                    self.sink.emit(
                        t,
                        EventKind::Pack { dst: dst as u16, tag: msg.tag(), bytes: bytes as u32 },
                    );
                    self.sink.emit(
                        t,
                        EventKind::Send {
                            dst: dst as u16,
                            tag: msg.tag(),
                            bytes: bytes as u32,
                            subs: 1,
                        },
                    );
                }
                let env = Envelope {
                    src: self.rank,
                    send_time: self.clock.get(),
                    bytes,
                    vc: self.vc_stamp(),
                    sw: self.sw_epoch.get(),
                    msg,
                };
                self.transport.send_wire(dst, Wire::Single(env));
            }
            policy => {
                self.charge(self.cost.pack_cost);
                let payload = msg.size_bytes();
                // Logical accounting is policy-independent: the same
                // per-message payload+header charge as `Off`, so apps see
                // deterministic byte counts regardless of how messages
                // end up grouped on the wire.
                self.logical_sent.set(self.logical_sent.get() + 1);
                self.bytes_sent.set(self.bytes_sent.get() + (payload + self.header_bytes) as u64);
                if self.sink.enabled() {
                    self.sink.emit(
                        self.clock.get(),
                        EventKind::Pack {
                            dst: dst as u16,
                            tag: msg.tag(),
                            bytes: (payload + self.header_bytes) as u32,
                        },
                    );
                }
                let len = self.outbuf.borrow_mut().push(dst, (msg, payload));
                self.pending.set(self.pending.get() + 1);
                if let CoalescePolicy::Threshold(n) = policy {
                    if len >= n.max(1) {
                        self.flush_dst(dst);
                    }
                }
            }
        }
    }

    /// Flush every destination's coalescing buffer, in rank order. A
    /// no-op when nothing is buffered (the overwhelmingly common case at
    /// blocking points). Called automatically by [`Node::poll_until`] on
    /// entry and whenever a handled message empties the inbox, and by
    /// [`Node::recv_timeout`] before blocking — together those make every
    /// blocking point flush, the liveness rule coalescing relies on.
    pub fn flush_coalesced(&self) {
        if self.pending.get() == 0 {
            return;
        }
        // Visit only destinations that buffered something since the last
        // flush, in ascending rank order so the per-destination clock
        // charges land exactly as the old 0..nprocs scan did. (The dirty
        // list is taken first: `flush_dst` re-borrows the buffers.)
        let dirty = self.outbuf.borrow_mut().take_dirty();
        for dst in dirty {
            self.flush_dst(dst);
        }
    }

    /// Flush point after a handled message inside a poll loop: flush only
    /// once the local inbox has drained. While already-delivered messages
    /// remain queued the node cannot block, so holding the buffers open is
    /// safe — and it lets the replies generated while draining one
    /// coalesced batch (say, the acks for a train of update pushes) leave
    /// as one wire envelope instead of one per handled message.
    fn flush_after_handle(&self) {
        if self.inbox.borrow().is_empty() {
            self.flush_coalesced();
        }
    }

    /// Flush one destination's buffer as a single wire envelope: one
    /// `send_overhead`, one header, summed payload bytes.
    fn flush_dst(&self, dst: usize) {
        let parts = self.outbuf.borrow_mut().take(dst);
        if parts.is_empty() {
            return;
        }
        self.pending.set(self.pending.get() - parts.len());
        self.charge(self.cost.send_overhead);
        let wire_bytes = parts.iter().map(|&(_, b)| b).sum::<usize>() + self.header_bytes;
        self.wire_sent.set(self.wire_sent.get() + 1);
        self.wire_bytes_sent.set(self.wire_bytes_sent.get() + wire_bytes as u64);
        if self.sink.enabled() {
            self.sink.emit(
                self.clock.get(),
                EventKind::Send {
                    dst: dst as u16,
                    tag: parts[0].0.tag(),
                    bytes: wire_bytes as u32,
                    subs: parts.len() as u32,
                },
            );
        }
        let wire = Wire::Batch {
            src: self.rank,
            send_time: self.clock.get(),
            wire_bytes,
            parts,
            vc: self.vc_stamp(),
            sw: self.sw_epoch.get(),
        };
        self.transport.send_wire(dst, wire);
    }

    /// Expand one wire message into inbox entries. Arrival is computed
    /// here — once per wire envelope, from its wire bytes — so a batch's
    /// parts all become available at the same virtual instant, exactly
    /// when the one wire message lands.
    fn enqueue_wire(&self, w: Wire<M>, inbox: &mut VecDeque<Inbound<M>>) {
        match w {
            Wire::Single(env) => {
                let arrival = env.send_time + self.cost.wire_time(env.bytes);
                inbox.push_back(Inbound {
                    arrival,
                    charge: self.cost.recv_overhead,
                    wire: Some((1, env.bytes as u32)),
                    env,
                });
            }
            Wire::Batch { src, send_time, wire_bytes, parts, vc, sw } => {
                let arrival = send_time + self.cost.wire_time(wire_bytes);
                let subs = parts.len() as u32;
                let mut vc = vc;
                for (i, (msg, payload)) in parts.into_iter().enumerate() {
                    // Only the batch's first delivered part carries the
                    // sender's vector clock: one merge per wire envelope.
                    inbox.push_back(Inbound {
                        env: Envelope { src, send_time, bytes: payload, vc: vc.take(), sw, msg },
                        arrival,
                        charge: if i == 0 { self.cost.recv_overhead } else { self.cost.pack_cost },
                        wire: (i == 0).then_some((subs, wire_bytes as u32)),
                    });
                }
            }
        }
    }

    /// Pull a burst of messages off the channel into the local inbox,
    /// without absorbing them. Per-pair FIFO is preserved: the channel
    /// delivers in send order per source and the inbox is a queue. A
    /// coalesced batch counts as one pull but may expand past the burst
    /// limit; the limit only bounds channel synchronization per burst.
    ///
    /// Deterministic mode ignores the burst limit and drains the whole
    /// backlog: the seeded pop ranks the candidates it can see, so a
    /// bounded drain would let wall-clock channel order decide *which*
    /// 64 candidates compete — visible as replay divergence on machines
    /// whose backlog exceeds one burst (256 senders racing one inbox).
    fn drain_burst(&self, inbox: &mut VecDeque<Inbound<M>>) {
        let limit = if self.det_seed.is_some() { usize::MAX } else { self.drain_batch.get() };
        while inbox.len() < limit {
            match self.transport.try_recv_wire() {
                Ok(w) => self.enqueue_wire(w, inbox),
                Err(TryWireError::Empty) => break,
                Err(TryWireError::Dead) => self.peer_exited("transport disconnected"),
            }
        }
    }

    /// Pop the next inbox entry. Default (wall-clock) scheduling is plain
    /// FIFO over the drained inbox. With a deterministic seed installed,
    /// the pop instead considers each source's *head* entry (per-pair FIFO
    /// — the delivery-order guarantee protocols rely on — is preserved)
    /// and picks the minimum by `(arrival, mix(seed, src, arrival))`: a
    /// virtual-time-respecting order whose ties break by seeded hash
    /// rather than by which sender's thread won the wall-clock race. This
    /// is a best-effort replay heuristic — the candidate set still depends
    /// on what has physically arrived — but two runs whose waits see the
    /// same candidate sets replay identically.
    fn pop_inbox(&self, inbox: &mut VecDeque<Inbound<M>>) -> Option<Inbound<M>> {
        let seed = match self.det_seed {
            Some(s) => s,
            None => return inbox.pop_front(),
        };
        if inbox.len() <= 1 {
            return inbox.pop_front();
        }
        // Sources whose head entry has been considered: a single u64
        // bitmask covers machines up to 64 ranks; wider machines get a
        // word-bitmap allocated per pop (deterministic mode is a replay /
        // debugging mode, so the allocation is off the production path).
        let mut seen_small: u64 = 0;
        let mut seen_wide: Option<Box<[u64]>> =
            (self.nprocs > 64).then(|| vec![0u64; self.nprocs.div_ceil(64)].into_boxed_slice());
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, inb) in inbox.iter().enumerate() {
            let src = inb.env.src;
            let newly_seen = match &mut seen_wide {
                Some(words) => {
                    let bit = 1u64 << (src % 64);
                    let fresh = words[src / 64] & bit == 0;
                    words[src / 64] |= bit;
                    fresh
                }
                None => {
                    let bit = 1u64 << (src as u64 & 63);
                    let fresh = seen_small & bit == 0;
                    seen_small |= bit;
                    fresh
                }
            };
            if !newly_seen {
                continue;
            }
            let key = (inb.arrival, det_mix(seed, src as u64, inb.arrival));
            if best.is_none_or(|(a, m, _)| (key.0, key.1) < (a, m)) {
                best = Some((key.0, key.1, i));
            }
        }
        let (_, _, idx) = best?;
        inbox.remove(idx)
    }

    /// Non-blocking receive. On delivery the local clock advances to cover
    /// the message's flight time and the receive overhead is charged.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        let mut inbox = self.inbox.borrow_mut();
        if inbox.is_empty() || self.det_seed.is_some() {
            // Deterministic mode drains on every pop so the seeded order
            // sees the widest (least wall-clock-dependent) candidate set.
            self.drain_burst(&mut inbox);
        }
        let inb = self.pop_inbox(&mut inbox)?;
        drop(inbox);
        self.absorb(&inb);
        Some(inb.env)
    }

    /// Blocking receive with a short timeout, for poll loops that should
    /// yield the CPU while idle. Flushes this node's own coalescing
    /// buffers before blocking (the liveness rule: never sleep on a
    /// message a peer may be waiting to trigger). Returns `None` on
    /// timeout.
    ///
    /// # Panics
    ///
    /// Panics if the channel is disconnected: every peer's thread has
    /// exited, so no message can ever arrive and waiting is futile.
    pub fn recv_timeout(&self, d: Duration) -> Option<Envelope<M>> {
        {
            let mut inbox = self.inbox.borrow_mut();
            if let Some(inb) = self.pop_inbox(&mut inbox) {
                drop(inbox);
                self.absorb(&inb);
                return Some(inb.env);
            }
        }
        self.flush_coalesced();
        // Under the multiplexed backend this channel wait is the yield
        // point: give the execution slot up for exactly the park, take it
        // back before touching node state (including the error paths — a
        // peer-death panic below unwinds while holding the slot, and the
        // thread-exit release is idempotent).
        let waited = match &self.slot {
            Some(slot) => {
                slot.release();
                let r = self.transport.recv_wire_timeout(d);
                slot.acquire();
                r
            }
            None => self.transport.recv_wire_timeout(d),
        };
        match waited {
            Ok(w) => {
                let mut inbox = self.inbox.borrow_mut();
                self.enqueue_wire(w, &mut inbox);
                if self.det_seed.is_some() {
                    // Same widest-candidate-set rule as `try_recv`: rank
                    // everything already queued, not just this arrival.
                    self.drain_burst(&mut inbox);
                }
                let inb = self.pop_inbox(&mut inbox).expect("wire expands to at least one message");
                drop(inbox);
                self.absorb(&inb);
                Some(inb.env)
            }
            Err(WaitWireError::Timeout) => None,
            Err(WaitWireError::Dead) => self.peer_exited("transport disconnected"),
        }
    }

    fn absorb(&self, inb: &Inbound<M>) {
        let now = self.clock.get().max(inb.arrival) + inb.charge;
        self.clock.set(now);
        self.msgs_recv.set(self.msgs_recv.get() + 1);
        if let Some(vc) = &inb.env.vc {
            self.vc_merge(vc);
        }
        if inb.env.sw > self.sw_seen.get() {
            // Coherent switch commits sit between two machine barriers, so
            // a message can arrive from at most one epoch ahead (its sender
            // passed the commit barrier this node is still approaching) and
            // never from a stale epoch after this node committed a newer
            // one — the pre-commit flush drained those.
            debug_assert!(
                inb.env.sw <= self.sw_epoch.get() + 1,
                "node {}: message from switch epoch {} arrived at epoch {}",
                self.rank,
                inb.env.sw,
                self.sw_epoch.get()
            );
            self.sw_seen.set(inb.env.sw);
        }
        if self.sink.enabled() {
            if let Some((subs, wire_bytes)) = inb.wire {
                self.sink.emit(
                    now,
                    EventKind::Recv {
                        src: inb.env.src as u16,
                        tag: inb.env.msg.tag(),
                        bytes: wire_bytes,
                        sent_at: inb.env.send_time,
                        subs,
                    },
                );
            }
        }
    }

    /// The first recorded failure's panic message, as a `: msg` suffix for
    /// peer-death panics (empty if the message hasn't been published yet —
    /// the failure flag trips before the detail store lands).
    fn failure_suffix(&self) -> String {
        let msg = self.transport.failure_detail();
        if msg.is_empty() {
            String::new()
        } else {
            format!(": {msg}")
        }
    }

    /// Diagnose a dead peer and panic immediately instead of letting the
    /// caller stall into the watchdog.
    fn peer_exited(&self, what: &str) -> ! {
        let culprit = self.transport.failed_rank();
        if culprit >= 0 {
            panic!(
                "node {}: peer exited (node {culprit} died{}) while: {what}",
                self.rank,
                self.failure_suffix()
            );
        }
        panic!("node {}: peer exited while: {what}", self.rank);
    }

    /// Panic if some peer's node has died by panic: a message this node
    /// is waiting on may never arrive, so failing fast with the culprit's
    /// rank (and its panic message, read lock-free off the transport)
    /// beats a silent multi-second watchdog stall.
    fn check_peers(&self, what: &str) {
        let culprit = self.transport.failed_rank();
        if culprit >= 0 && culprit as usize != self.rank {
            panic!(
                "node {}: peer exited (node {culprit} died{}) while waiting for: {what}",
                self.rank,
                self.failure_suffix()
            );
        }
    }

    /// The watchdog deadline scaled to machine size: a 4096-node barrier
    /// legitimately takes longer to drain over a core-sized worker pool
    /// than a 4-node one, so the configured timeout grows by one multiple
    /// per 64 ranks. Machines up to 64 nodes keep the configured value
    /// exactly (the timing-sensitive tests pin small machines).
    fn effective_watchdog(&self) -> Duration {
        self.watchdog.get().saturating_mul(1 + (self.nprocs / 64) as u32)
    }

    /// Spin-with-backoff until `pred` returns true, invoking `handle` on
    /// messages that arrive in the meantime. This is the substrate's
    /// equivalent of an Active Messages poll loop: a blocked processor keeps
    /// servicing incoming protocol requests. Panics with `what` if the
    /// watchdog expires (a wedged protocol) or a peer's thread dies (a
    /// crashed protocol on the other side).
    ///
    /// Coalescing liveness: the node's own buffers are flushed on entry —
    /// before the wait can block on a reply this node itself still holds —
    /// and again whenever a handled message leaves the inbox empty,
    /// because handlers send replies (a sharer answering a recall inside a
    /// barrier wait, say) that a peer's forward progress may depend on.
    /// While the inbox still holds delivered messages the node cannot
    /// block, so the flush is deferred and the replies for one incoming
    /// batch coalesce.
    ///
    /// `pred` is re-checked after **every** message: as soon as the wait is
    /// satisfied the loop returns, leaving any further queued messages for
    /// the node's next poll. This matters for virtual-time fidelity — a
    /// thread that races ahead in wall-clock time can enqueue messages
    /// whose virtual send time is far in this node's future, and absorbing
    /// them while blocked on an earlier event would serialize logically
    /// parallel phases (the node's own next compute phase would start
    /// *after* the peer's, inflating simulated time from max-of-nodes
    /// toward sum-of-nodes).
    pub fn poll_until(
        &self,
        what: &str,
        handle: impl FnMut(&Self, Envelope<M>),
        mut pred: impl FnMut() -> bool,
    ) {
        self.flush_coalesced();
        if pred() {
            return;
        }
        if self.sink.enabled() {
            self.sink.emit(self.clock.get(), EventKind::Block { what: what.into() });
        }
        self.poll_loop(what, handle, pred);
        if self.sink.enabled() {
            self.sink.emit(self.clock.get(), EventKind::Unblock { what: what.into() });
        }
    }

    fn poll_loop(
        &self,
        what: &str,
        mut handle: impl FnMut(&Self, Envelope<M>),
        mut pred: impl FnMut() -> bool,
    ) {
        let start = Instant::now();
        let mut idle = IDLE_POLL_FLOOR;
        loop {
            match self.try_recv() {
                Some(env) => {
                    idle = IDLE_POLL_FLOOR;
                    handle(self, env);
                    self.flush_after_handle();
                    if pred() {
                        return;
                    }
                }
                None => {
                    if pred() {
                        return;
                    }
                    match self.recv_timeout(idle) {
                        Some(env) => {
                            idle = IDLE_POLL_FLOOR;
                            handle(self, env);
                            self.flush_after_handle();
                            if pred() {
                                return;
                            }
                        }
                        None => {
                            idle = (idle * 2).min(IDLE_POLL_CEIL);
                            self.check_peers(what);
                            if start.elapsed() > self.effective_watchdog() {
                                if self.sink.enabled() {
                                    // Dump this node's wait-graph view before
                                    // dying: which hook/region the stall sits
                                    // inside, not just the caller's `what`.
                                    let t = MachineTrace { nodes: vec![self.sink.take(self.rank)] };
                                    let report = t.wait_graph_report();
                                    if !report.is_empty() {
                                        eprintln!("{report}");
                                    }
                                }
                                panic!(
                                    "node {} wedged waiting for: {what} (clock {} ns)",
                                    self.rank,
                                    self.now()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Snapshot of this node's statistics (final clock filled in). Flushes
    /// the coalescing buffers first so the wire counts cover everything the
    /// program has logically sent.
    pub fn stats(&self) -> NodeStats {
        self.flush_coalesced();
        NodeStats {
            logical_msgs: self.logical_sent.get(),
            wire_msgs: self.wire_sent.get(),
            bytes_sent: self.bytes_sent.get(),
            wire_bytes: self.wire_bytes_sent.get(),
            msgs_recv: self.msgs_recv.get(),
            violations: self.violations.get(),
            switch_epoch: self.sw_epoch.get(),
            final_clock: self.clock.get(),
        }
    }
}

/// SplitMix64-style tie-break hash for the deterministic scheduler: a
/// pure function of (seed, source rank, arrival time), so two runs with
/// the same seed rank identical candidates identically.
fn det_mix(seed: u64, src: u64, arrival: u64) -> u64 {
    let mut z = seed ^ src.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ arrival.rotate_left(17);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::HEADER_BYTES;
    use crate::spmd::Spmd;

    #[test]
    fn clock_advances_on_send_and_recv() {
        let cost = CostModel::cm5();
        let r = Spmd::builder().nprocs(2).cost(cost.clone()).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                node.send(1, 42u64);
                node.now()
            } else {
                let got = Cell::new(0u64);
                node.poll_until("payload", |_, env| got.set(env.msg), || got.get() != 0);
                assert_eq!(got.get(), 42);
                node.now()
            }
        });
        // Sender paid send overhead; receiver's clock covers flight time.
        assert_eq!(r.results[0], cost.send_overhead);
        assert!(r.results[1] >= cost.send_overhead + cost.wire_time(8 + HEADER_BYTES));
    }

    #[test]
    fn self_send_is_delivered() {
        let r = Spmd::builder().nprocs(1).cost(CostModel::free()).run::<u64, _, _>(|node| {
            node.send(0, 7);
            let got = Cell::new(0u64);
            node.poll_until("self message", |_, env| got.set(env.msg), || got.get() != 0);
            got.get()
        });
        assert_eq!(r.results[0], 7);
    }

    #[test]
    #[should_panic(expected = "wedged waiting for")]
    fn watchdog_fires() {
        Spmd::builder()
            .nprocs(1)
            .cost(CostModel::free())
            .watchdog(Duration::from_millis(50))
            .run::<u64, _, _>(|node| {
                node.poll_until("never", |_, _| {}, || false);
            });
    }

    #[test]
    fn stats_count_messages() {
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                for i in 0..5 {
                    node.send(1, i + 1);
                }
            } else {
                let seen = Cell::new(0u64);
                node.poll_until("5 messages", |_, _| seen.set(seen.get() + 1), || seen.get() == 5);
            }
        });
        assert_eq!(r.stats.nodes[0].logical_msgs, 5);
        // Coalescing off: every logical message is its own wire message.
        assert_eq!(r.stats.nodes[0].wire_msgs, 5);
        assert_eq!(r.stats.nodes[1].msgs_recv, 5);
        assert_eq!(r.stats.nodes[0].bytes_sent, 5 * (8 + HEADER_BYTES as u64));
        assert_eq!(r.stats.nodes[0].wire_bytes, r.stats.nodes[0].bytes_sent);
    }

    #[test]
    fn fifo_between_pair() {
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                for i in 0..100 {
                    node.send(1, i);
                }
                Vec::new()
            } else {
                let seen = RefCell::new(Vec::new());
                node.poll_until(
                    "100 msgs",
                    |_, env| seen.borrow_mut().push(env.msg),
                    || seen.borrow().len() == 100,
                );
                seen.into_inner()
            }
        });
        assert_eq!(r.results[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_between_pair_unbatched() {
        // Same as above with the burst disabled: the drain path must be
        // observationally identical at batch size 1.
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).drain_batch(1).run::<u64, _, _>(
            |node| {
                if node.rank() == 0 {
                    for i in 0..100 {
                        node.send(1, i);
                    }
                    Vec::new()
                } else {
                    let seen = RefCell::new(Vec::new());
                    node.poll_until(
                        "100 msgs",
                        |_, env| seen.borrow_mut().push(env.msg),
                        || seen.borrow().len() == 100,
                    );
                    seen.into_inner()
                }
            },
        );
        assert_eq!(r.results[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn inbox_messages_absorb_at_pop_not_at_drain() {
        // A burst of queued messages must not advance the clock until each
        // one is actually popped: after the first poll_until returns (its
        // predicate satisfied by message #1), the receiver's clock reflects
        // one receive even though the whole burst is already local.
        let cost = CostModel::cm5();
        let recv_overhead = cost.recv_overhead;
        let r = Spmd::builder().nprocs(2).cost(cost).run::<u64, _, _>(|node| {
            if node.rank() == 0 {
                for i in 0..10 {
                    node.send(1, i + 1);
                }
                0
            } else {
                let got = Cell::new(0u64);
                node.poll_until("first msg", |_, env| got.set(env.msg), || got.get() == 1);
                let after_one = node.stats().msgs_recv;
                assert_eq!(after_one, 1, "only the popped message is absorbed");
                let seen = Cell::new(1u64);
                node.poll_until("rest", |_, _| seen.set(seen.get() + 1), || seen.get() == 10);
                node.stats().msgs_recv
            }
        });
        assert_eq!(r.results[1], 10);
        assert!(recv_overhead > 0);
    }

    #[test]
    fn batch_charges_one_latency_one_header() {
        // Three logical u64 sends coalesce into one wire envelope: the
        // sender pays 3× pack + 1× send_overhead; the receiver's clock
        // covers one flight of (3×8 + HEADER) bytes plus one recv_overhead
        // and two pack (unpack) charges — not three full latencies.
        let cost = CostModel::cm5();
        let c = cost.clone();
        let r = Spmd::builder()
            .nprocs(2)
            .cost(cost.clone())
            .coalesce(CoalescePolicy::FlushOnWait)
            .run::<u64, _, _>(move |node| {
            if node.rank() == 0 {
                for i in 0..3 {
                    node.send(1, i + 1);
                }
                assert_eq!(node.pending_coalesced(), 3);
                node.flush_coalesced();
                let s = node.stats();
                assert_eq!(s.logical_msgs, 3);
                assert_eq!(s.wire_msgs, 1);
                assert_eq!(s.bytes_sent, 3 * (8 + HEADER_BYTES as u64));
                assert_eq!(s.wire_bytes, 3 * 8 + HEADER_BYTES as u64);
                node.now()
            } else {
                let seen = Cell::new(0u64);
                node.poll_until("3 msgs", |_, _| seen.set(seen.get() + 1), || seen.get() == 3);
                node.now()
            }
        });
        let send_done = 3 * c.pack_cost + c.send_overhead;
        assert_eq!(r.results[0], send_done);
        let arrival = send_done + c.wire_time(3 * 8 + HEADER_BYTES);
        assert_eq!(r.results[1], arrival + c.recv_overhead + 2 * c.pack_cost);
    }

    #[test]
    fn threshold_flushes_without_an_explicit_wait() {
        let r = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::free())
            .coalesce(CoalescePolicy::Threshold(2))
            .run::<u64, _, _>(|node| {
                if node.rank() == 0 {
                    for i in 0..5 {
                        node.send(1, i + 1);
                    }
                    // 2+2 flushed by the threshold; one message still queued.
                    let pending = node.pending_coalesced() as u64;
                    node.flush_coalesced();
                    (pending, node.stats().wire_msgs)
                } else {
                    let seen = Cell::new(0u64);
                    node.poll_until("5 msgs", |_, _| seen.set(seen.get() + 1), || seen.get() == 5);
                    (0, 0)
                }
            });
        assert_eq!(r.results[0], (1, 3));
        assert_eq!(r.stats.nodes[0].logical_msgs, 5);
        assert_eq!(r.stats.nodes[1].msgs_recv, 5);
    }

    #[test]
    fn coalesced_fifo_between_pair() {
        // Order must survive batching, including across threshold flushes
        // interleaved with wait-point flushes.
        let r = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::free())
            .coalesce(CoalescePolicy::Threshold(7))
            .run::<u64, _, _>(|node| {
                if node.rank() == 0 {
                    for i in 0..100 {
                        node.send(1, i);
                    }
                    Vec::new()
                } else {
                    let seen = RefCell::new(Vec::new());
                    node.poll_until(
                        "100 msgs",
                        |_, env| seen.borrow_mut().push(env.msg),
                        || seen.borrow().len() == 100,
                    );
                    seen.into_inner()
                }
            });
        assert_eq!(r.results[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn wait_points_flush_so_request_reply_cannot_deadlock() {
        // Request/reply ping-pong under FlushOnWait with drain_batch(1):
        // nothing flushes until a node actually blocks, so this deadlocks
        // unless poll_until flushes on entry (the request) and after each
        // handled message (the reply, sent from handler context).
        let r = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::free())
            .coalesce(CoalescePolicy::FlushOnWait)
            .drain_batch(1)
            .watchdog(Duration::from_secs(5))
            .run::<u64, _, _>(|node| {
                let done = Cell::new(0u64);
                if node.rank() == 0 {
                    node.send(1, 10);
                    node.poll_until("reply", |_, env| done.set(env.msg), || done.get() != 0);
                } else {
                    node.poll_until(
                        "request",
                        |n, env| {
                            n.send(0, env.msg + 1);
                            done.set(env.msg);
                        },
                        || done.get() != 0,
                    );
                }
                done.get()
            });
        assert_eq!(r.results, vec![11, 10]);
    }

    #[test]
    fn set_coalesce_flushes_before_switching() {
        let r = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::free())
            .coalesce(CoalescePolicy::FlushOnWait)
            .run::<u64, _, _>(|node| {
                if node.rank() == 0 {
                    node.send(1, 1);
                    node.send(1, 2);
                    assert_eq!(node.pending_coalesced(), 2);
                    node.set_coalesce(CoalescePolicy::Off);
                    assert_eq!(node.pending_coalesced(), 0);
                    node.send(1, 3);
                    let s = node.stats();
                    (s.logical_msgs, s.wire_msgs)
                } else {
                    let seen = Cell::new(0u64);
                    node.poll_until("3 msgs", |_, _| seen.set(seen.get() + 1), || seen.get() == 3);
                    (0, 0)
                }
            });
        // Two buffered messages went out as one batch, then one single.
        assert_eq!(r.results[0], (3, 2));
    }
}
