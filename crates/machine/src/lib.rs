//! Active-message distributed-machine substrate.
//!
//! This crate simulates the distributed-memory machine the Ace paper ran on
//! (a 32-node Thinking Machines CM-5 with Active Messages): a fixed set of
//! *nodes*, each a single-threaded processor with private memory, that
//! communicate **only** by sending typed messages to each other. Each node is
//! an OS thread; the "network" is a pluggable [`Transport`] backend — by
//! default in-process channels ([`TransportKind::InProc`]), optionally real
//! length-prefixed sockets ([`TransportKind::Socket`]) so ranks can live in
//! separate OS processes (see [`MachineBuilder::spawn_rank`]).
//!
//! Two kinds of time are tracked:
//!
//! * **wall time** — real elapsed time of the simulation, and
//! * **simulated time** — a per-node virtual clock advanced by a
//!   [`CostModel`]: computation charges issued by the runtime and
//!   applications, plus message latency/bandwidth charges. Message envelopes
//!   carry the sender's clock, and a receiving node's clock advances to
//!   `max(local, send_time + latency + bytes * per_byte)`, so causality
//!   propagates CM-5-like communication delays through the execution.
//!
//! The substrate is deliberately minimal: delivery order between a fixed
//! pair of nodes is FIFO (channel order), there is no shared memory, and all
//! higher-level behaviour (coherence protocols, barriers, locks) is built on
//! top in `ace-core` / `ace-crl`.

pub mod cost;
pub mod envelope;
pub mod lockfree;
pub mod node;
pub mod pod;
pub mod sched;
pub mod spmd;
pub mod stats;
pub mod transport;

pub use cost::CostModel;
pub use envelope::{Envelope, MsgSize, Wire, HEADER_BYTES};
pub use lockfree::LfCell;
pub use node::{CheckMode, CoalescePolicy, Node};
pub use pod::Pod;
pub use sched::ExecBackend;
pub use spmd::{MachineBuilder, RankRun, Spmd, SpmdResult};
pub use stats::{MachineStats, NodeStats};
pub use transport::{
    CodecError, ConfigError, InProcTransport, SockAddr, SocketCfg, SocketTransport, Transport,
    TransportKind, WireCodec, WireReader, SOCKET_HEADER_BYTES, SOCKET_MAX_RANKS,
};
// Re-exported so downstream crates configure and consume tracing without
// depending on `ace-trace` directly.
pub use ace_trace::{
    validate_chrome_trace, ChromeCheck, EventKind, Hook, MachineTrace, NodeTrace, TraceConfig,
    TraceEvent, TraceSink, TraceSummary, NO_REGION,
};

/// Maximum number of simulated processors. Sharer sets in the protocol
/// layers keep a 64-bit bitmask fast path and spill to a word vector past
/// 64 ranks, so the cap is set by practicality (per-node threads, channel
/// fan-in), not representation; 4096 nodes is where the scaling study
/// tops out.
pub const MAX_NODES: usize = 4096;
