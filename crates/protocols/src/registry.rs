//! Protocol registry: the analogue of the paper's registration script.
//!
//! In the paper (Figure 1), a protocol designer registers a protocol by
//! running a Tcl script that records the protocol's name, which access and
//! synchronization points it handles, and whether its calls may be
//! optimized; the compiler reads the generated system configuration file.
//! Here the same information is a Rust table: [`ProtoSpec`] names a
//! protocol (plus any parameters), [`make`] instantiates it, and
//! [`ProtocolInfo`]/[`all_protocols`] expose the registration metadata the
//! Ace-C compiler consumes.

use std::rc::Rc;

use ace_core::{Actions, GrantSet, Protocol};

use crate::{
    AdaptiveEngine, AdaptiveSpec, DynamicUpdate, FetchAddCounter, HomeOwned, Migratory,
    NullProtocol, PipelinedWrite, SeqInvalidate, StaticUpdate,
};

/// A serializable protocol selector, used by applications to request
/// protocols per space and by the Ace-C compiler's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtoSpec {
    /// Sequentially-consistent invalidation (the default).
    Sc,
    /// Dynamic update.
    DynUpdate,
    /// Static update (barrier-time pushes).
    StaticUpdate,
    /// Null protocol.
    Null,
    /// Migratory single-copy.
    Migratory,
    /// Pipelined delta writes.
    Pipelined,
    /// Home-owned bulk regions.
    HomeOwned,
    /// Fetch-and-add counter with the given stride.
    FetchAdd(u64),
    /// Adaptive meta-protocol over a candidate set of the above.
    Adaptive(AdaptiveSpec),
}

impl ProtoSpec {
    /// The registered protocol name (what `Ace_ChangeProtocol` strings
    /// and the compiler configuration refer to).
    pub fn name(self) -> &'static str {
        match self {
            ProtoSpec::Sc => "SC",
            ProtoSpec::DynUpdate => "Update",
            ProtoSpec::StaticUpdate => "StaticUpdate",
            ProtoSpec::Null => "Null",
            ProtoSpec::Migratory => "Migratory",
            ProtoSpec::Pipelined => "Pipelined",
            ProtoSpec::HomeOwned => "HomeOwned",
            ProtoSpec::FetchAdd(_) => "FetchAdd",
            ProtoSpec::Adaptive(_) => "Adaptive",
        }
    }

    /// Parse a registered protocol name.
    pub fn by_name(name: &str) -> Option<ProtoSpec> {
        Some(match name {
            "SC" => ProtoSpec::Sc,
            "Update" => ProtoSpec::DynUpdate,
            "StaticUpdate" => ProtoSpec::StaticUpdate,
            "Null" => ProtoSpec::Null,
            "Migratory" => ProtoSpec::Migratory,
            "Pipelined" => ProtoSpec::Pipelined,
            "HomeOwned" => ProtoSpec::HomeOwned,
            "FetchAdd" => ProtoSpec::FetchAdd(1),
            "Adaptive" => ProtoSpec::Adaptive(AdaptiveSpec::default_set()),
            _ => return None,
        })
    }
}

/// Instantiate a protocol object for one space on the calling node.
pub fn make(spec: ProtoSpec) -> Rc<dyn Protocol> {
    match spec {
        ProtoSpec::Sc => Rc::new(SeqInvalidate::new()),
        ProtoSpec::DynUpdate => Rc::new(DynamicUpdate::new()),
        ProtoSpec::StaticUpdate => Rc::new(StaticUpdate::new()),
        ProtoSpec::Null => Rc::new(NullProtocol::new()),
        ProtoSpec::Migratory => Rc::new(Migratory::new()),
        ProtoSpec::Pipelined => Rc::new(PipelinedWrite::new()),
        ProtoSpec::HomeOwned => Rc::new(HomeOwned::new()),
        ProtoSpec::FetchAdd(stride) => Rc::new(FetchAddCounter::with_stride(stride)),
        ProtoSpec::Adaptive(spec) => Rc::new(AdaptiveEngine::new(spec)),
    }
}

/// Registration metadata for one protocol (one line of the paper's system
/// configuration file).
#[derive(Debug, Clone)]
pub struct ProtocolInfo {
    /// Registered name.
    pub name: &'static str,
    /// The selector that instantiates it.
    pub spec: ProtoSpec,
    /// Whether the compiler may move/merge this protocol's calls.
    pub optimizable: bool,
    /// Hooks that are null (candidates for direct-dispatch removal).
    pub null_actions: Actions,
    /// Which concurrent cross-node section combinations the protocol
    /// grants (the conformance checker's ground truth).
    pub grants: GrantSet,
}

/// The full registry, in registration order.
pub fn all_protocols() -> Vec<ProtocolInfo> {
    [
        ProtoSpec::Sc,
        ProtoSpec::DynUpdate,
        ProtoSpec::StaticUpdate,
        ProtoSpec::Null,
        ProtoSpec::Migratory,
        ProtoSpec::Pipelined,
        ProtoSpec::HomeOwned,
        ProtoSpec::FetchAdd(1),
        ProtoSpec::Adaptive(AdaptiveSpec::default_set()),
    ]
    .into_iter()
    .map(|spec| {
        let p = make(spec);
        ProtocolInfo {
            name: spec.name(),
            spec,
            optimizable: p.optimizable(),
            null_actions: p.null_actions(),
            grants: p.grants(),
        }
    })
    .collect()
}

/// Look up registration metadata by name.
pub fn info(name: &str) -> Option<ProtocolInfo> {
    all_protocols().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in all_protocols() {
            assert_eq!(ProtoSpec::by_name(p.name).map(|s| s.name()), Some(p.name));
            assert_eq!(make(p.spec).name(), p.name);
        }
    }

    #[test]
    fn default_protocol_is_not_optimizable() {
        assert!(!info("SC").unwrap().optimizable);
        assert!(info("Update").unwrap().optimizable);
        assert!(info("Null").unwrap().optimizable);
    }

    #[test]
    fn static_update_declares_null_access_hooks() {
        let i = info("StaticUpdate").unwrap();
        assert!(i.null_actions.contains(Actions::START_READ));
        assert!(i.null_actions.contains(Actions::END_READ));
        assert!(!i.null_actions.contains(Actions::END_WRITE));
    }

    #[test]
    fn grant_table_matches_protocol_disciplines() {
        let g = |n: &str| info(n).unwrap().grants;
        assert_eq!(g("SC"), GrantSet::exclusive());
        assert_eq!(g("Migratory"), GrantSet::exclusive());
        assert_eq!(g("Null"), GrantSet::concurrent());
        assert_eq!(g("FetchAdd"), GrantSet::concurrent());
        assert_eq!(g("Update"), GrantSet::concurrent());
        assert_eq!(g("Pipelined"), GrantSet::concurrent());
        assert_eq!(g("StaticUpdate"), GrantSet { write_write: false, read_write: true });
        assert_eq!(g("HomeOwned"), GrantSet { write_write: false, read_write: true });
    }

    #[test]
    fn adaptive_registers_and_delegates_grants_to_its_start_candidate() {
        let i = info("Adaptive").unwrap();
        // Never optimizable: reordering across a potential switch point
        // is unsafe, and the engine's grants start at SC's (exclusive)
        // because delegation tracks the inner protocol.
        assert!(!i.optimizable);
        assert_eq!(i.grants, GrantSet::exclusive());
        assert_eq!(i.null_actions, Actions::empty());
        match i.spec {
            ProtoSpec::Adaptive(s) => assert!(s.is_adaptive()),
            other => panic!("wrong spec: {other:?}"),
        }
    }

    #[test]
    fn unknown_name_rejected() {
        assert!(ProtoSpec::by_name("Bogus").is_none());
        assert!(info("Bogus").is_none());
    }
}
