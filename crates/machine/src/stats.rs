//! Per-node and whole-machine counters.

/// Communication counters for one node.
///
/// Message accounting is split into *logical* and *wire* views. A logical
/// message is one `Node::send` call; a wire message is one envelope that
/// actually crossed a channel. With coalescing off the two coincide; with
/// coalescing on, many logical messages can share one wire envelope (and
/// one header), so `wire_msgs <= logical_msgs` always holds. Logical byte
/// accounting charges every message its payload plus header — a
/// deterministic function of the program — while `wire_bytes` charges each
/// wire envelope one header over its summed payloads, so
/// `bytes_sent - wire_bytes` is exactly the header bytes coalescing saved.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NodeStats {
    /// Logical messages injected by this node (one per `send` call).
    pub logical_msgs: u64,
    /// Wire envelopes this node put on a channel.
    pub wire_msgs: u64,
    /// Logical bytes injected: payload plus one header per logical message,
    /// independent of how messages were grouped on the wire.
    pub bytes_sent: u64,
    /// Wire bytes injected: payload plus one header per wire envelope.
    pub wire_bytes: u64,
    /// Logical messages received and handled by this node.
    pub msgs_recv: u64,
    /// Conformance violations the runtime checker recorded against this
    /// node (always zero when the machine runs with `CheckMode::Off`).
    pub violations: u64,
    /// The node's final protocol-switch epoch: how many adaptive protocol
    /// switches it committed (zero on machines running static protocols).
    pub switch_epoch: u64,
    /// Final virtual clock, filled in when the node's program returns.
    pub final_clock: u64,
}

impl NodeStats {
    /// Header bytes saved by coalescing on this node's sends.
    pub fn headers_saved(&self) -> u64 {
        self.bytes_sent.saturating_sub(self.wire_bytes)
    }
}

/// Aggregated statistics for a whole SPMD run.
#[derive(Debug, Default, Clone)]
pub struct MachineStats {
    /// Per-node counters, indexed by rank.
    pub nodes: Vec<NodeStats>,
}

impl MachineStats {
    /// Total logical messages sent across all nodes.
    pub fn total_msgs(&self) -> u64 {
        self.nodes.iter().map(|n| n.logical_msgs).sum()
    }

    /// Total wire envelopes sent across all nodes.
    pub fn total_wire_msgs(&self) -> u64 {
        self.nodes.iter().map(|n| n.wire_msgs).sum()
    }

    /// Total logical payload+header bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Total wire bytes sent across all nodes.
    pub fn total_wire_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.wire_bytes).sum()
    }

    /// Total conformance violations recorded across all nodes.
    pub fn total_violations(&self) -> u64 {
        self.nodes.iter().map(|n| n.violations).sum()
    }

    /// Total protocol-switch epochs committed across all nodes.
    pub fn total_switches(&self) -> u64 {
        self.nodes.iter().map(|n| n.switch_epoch).sum()
    }

    /// Simulated completion time of the run: the maximum final clock.
    pub fn sim_time(&self) -> u64 {
        self.nodes.iter().map(|n| n.final_clock).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let stats = MachineStats {
            nodes: vec![
                NodeStats {
                    logical_msgs: 3,
                    wire_msgs: 2,
                    bytes_sent: 100,
                    wire_bytes: 80,
                    msgs_recv: 1,
                    violations: 1,
                    switch_epoch: 0,
                    final_clock: 50,
                },
                NodeStats {
                    logical_msgs: 2,
                    wire_msgs: 2,
                    bytes_sent: 10,
                    wire_bytes: 10,
                    msgs_recv: 4,
                    violations: 0,
                    switch_epoch: 0,
                    final_clock: 80,
                },
            ],
        };
        assert_eq!(stats.total_msgs(), 5);
        assert_eq!(stats.total_wire_msgs(), 4);
        assert_eq!(stats.total_bytes(), 110);
        assert_eq!(stats.total_wire_bytes(), 90);
        assert_eq!(stats.total_violations(), 1);
        assert_eq!(stats.nodes[0].headers_saved(), 20);
        assert_eq!(stats.sim_time(), 80);
    }

    #[test]
    fn empty_machine() {
        let stats = MachineStats::default();
        assert_eq!(stats.total_msgs(), 0);
        assert_eq!(stats.total_wire_msgs(), 0);
        assert_eq!(stats.sim_time(), 0);
    }
}
