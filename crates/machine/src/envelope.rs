//! Message envelopes: what actually travels between nodes.

/// Size accounting for simulated bandwidth charges.
///
/// Implemented by each runtime's message type. `size_bytes` should return
/// the number of payload bytes the message would occupy on a real wire;
/// the substrate adds [`HEADER_BYTES`] for the active-message header.
pub trait MsgSize {
    /// Payload size in bytes (excluding the fixed header).
    fn size_bytes(&self) -> usize;

    /// Short stable tag naming the message's kind, used to label trace
    /// events and aggregate per-tag byte counts. Implementations should
    /// return one tag per logical message variant.
    fn tag(&self) -> &'static str {
        "msg"
    }
}

/// Fixed per-message header charge: handler id, source, region id, opcode —
/// roughly what a CM-5 active message packet carried.
pub const HEADER_BYTES: usize = 20;

/// A message in flight, stamped with the sender's identity and virtual
/// clock at send time.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending node's rank.
    pub src: usize,
    /// Sender's virtual clock when the message was injected.
    pub send_time: u64,
    /// Payload bytes, captured at send time (so the receiver does not need
    /// to re-measure the payload).
    pub bytes: usize,
    /// The message itself.
    pub msg: M,
}

impl MsgSize for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

impl MsgSize for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl MsgSize for Vec<u64> {
    fn size_bytes(&self) -> usize {
        self.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_sizes() {
        assert_eq!(().size_bytes(), 0);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(vec![1u64, 2, 3].size_bytes(), 24);
    }
}
